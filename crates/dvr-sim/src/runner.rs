//! The simulation runner.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dvr_core::{DvrConfig, DvrEngine, DvrTrace, OracleEngine, PreEngine, VrEngine};
use sim_mem::MemoryHierarchy;
use sim_multi::Scheduler;
use sim_ooo::{DynInst, EngineCtx, NullEngine, OooCore, RunaheadEngine, SanitizeReport};
use workloads::Workload;

use crate::config::{SimConfig, Technique};
use crate::multi::CoreComponent;
use crate::report::{EngineSummary, SimReport};

/// The technique-selected runahead engine as one concrete type, so the
/// scheduler's core component is not generic over the engine. Delegates
/// every [`RunaheadEngine`] hook and knows how to render its own
/// [`EngineSummary`] — the per-technique summary strings the reports have
/// always carried.
pub(crate) enum AnyEngine {
    Null(NullEngine),
    Pre(PreEngine),
    Vr(VrEngine),
    Dvr(Box<DvrEngine>),
    Oracle(OracleEngine),
}

impl AnyEngine {
    /// Builds the engine for a configuration, applying the Figure 8
    /// ablation overrides and the trace knob exactly as `simulate` always
    /// has.
    pub(crate) fn for_config(cfg: &SimConfig) -> AnyEngine {
        match cfg.technique {
            Technique::Baseline | Technique::Imp => AnyEngine::Null(NullEngine),
            Technique::Pre => AnyEngine::Pre(PreEngine::default()),
            Technique::Vr => AnyEngine::Vr(VrEngine::default()),
            Technique::Dvr | Technique::DvrOffload | Technique::DvrDiscovery => {
                let dcfg = match cfg.technique {
                    Technique::DvrOffload => {
                        DvrConfig { discovery: false, nested: false, ..cfg.dvr }
                    }
                    Technique::DvrDiscovery => DvrConfig { nested: false, ..cfg.dvr },
                    _ => cfg.dvr,
                };
                let mut e = DvrEngine::new(dcfg);
                if cfg.trace_dvr {
                    e.enable_trace();
                }
                AnyEngine::Dvr(Box::new(e))
            }
            Technique::Oracle => AnyEngine::Oracle(OracleEngine::new()),
        }
    }

    /// Takes the Discovery/spawn event trace (DVR engines only).
    pub(crate) fn take_trace(&mut self) -> Option<DvrTrace> {
        match self {
            AnyEngine::Dvr(e) => e.take_trace(),
            _ => None,
        }
    }

    /// The per-technique activity summary for the report.
    pub(crate) fn summary(&self) -> EngineSummary {
        match self {
            AnyEngine::Null(_) => EngineSummary::default(),
            AnyEngine::Pre(e) => {
                let s = *e.stats();
                EngineSummary {
                    episodes: s.episodes,
                    runahead_loads: s.prefetches,
                    detail: format!(
                        "pre: {} instrs pre-executed, {} poisoned loads",
                        s.instructions, s.poisoned_loads
                    ),
                    ..EngineSummary::default()
                }
            }
            AnyEngine::Vr(e) => {
                let s = *e.stats();
                EngineSummary {
                    episodes: s.episodes,
                    runahead_loads: s.lane_loads,
                    lanes_lost: s.lanes_lost,
                    detail: format!(
                        "vr: {} no-stride stalls, {} delayed-termination cycles",
                        s.no_stride_found, s.delayed_termination_cycles
                    ),
                    ..EngineSummary::default()
                }
            }
            AnyEngine::Dvr(e) => {
                let s = *e.stats();
                EngineSummary {
                    episodes: s.episodes,
                    runahead_loads: s.lane_loads,
                    nested_episodes: s.ndm_episodes,
                    detail: format!(
                        "dvr: {} lanes spawned, {} diverged episodes, {} innermost switches, \
                         {} chains without dependent loads",
                        s.lanes_spawned,
                        s.diverged_episodes,
                        s.innermost_switches,
                        s.no_dependent_chain
                    ),
                    ..EngineSummary::default()
                }
            }
            AnyEngine::Oracle(e) => {
                let s = *e.stats();
                EngineSummary {
                    detail: format!(
                        "oracle: {} misses hidden, {} natural hits",
                        s.hidden_misses, s.natural_hits
                    ),
                    ..EngineSummary::default()
                }
            }
        }
    }
}

impl RunaheadEngine for AnyEngine {
    fn name(&self) -> &'static str {
        match self {
            AnyEngine::Null(e) => e.name(),
            AnyEngine::Pre(e) => e.name(),
            AnyEngine::Vr(e) => e.name(),
            AnyEngine::Dvr(e) => e.name(),
            AnyEngine::Oracle(e) => e.name(),
        }
    }

    fn on_dispatch(&mut self, ctx: &mut EngineCtx<'_>, di: &DynInst) {
        match self {
            AnyEngine::Null(e) => e.on_dispatch(ctx, di),
            AnyEngine::Pre(e) => e.on_dispatch(ctx, di),
            AnyEngine::Vr(e) => e.on_dispatch(ctx, di),
            AnyEngine::Dvr(e) => e.on_dispatch(ctx, di),
            AnyEngine::Oracle(e) => e.on_dispatch(ctx, di),
        }
    }

    fn on_full_rob_stall(&mut self, ctx: &mut EngineCtx<'_>, head_complete_at: u64) -> u64 {
        match self {
            AnyEngine::Null(e) => e.on_full_rob_stall(ctx, head_complete_at),
            AnyEngine::Pre(e) => e.on_full_rob_stall(ctx, head_complete_at),
            AnyEngine::Vr(e) => e.on_full_rob_stall(ctx, head_complete_at),
            AnyEngine::Dvr(e) => e.on_full_rob_stall(ctx, head_complete_at),
            AnyEngine::Oracle(e) => e.on_full_rob_stall(ctx, head_complete_at),
        }
    }

    fn override_load(&mut self, ctx: &mut EngineCtx<'_>, addr: u64) -> Option<u64> {
        match self {
            AnyEngine::Null(e) => e.override_load(ctx, addr),
            AnyEngine::Pre(e) => e.override_load(ctx, addr),
            AnyEngine::Vr(e) => e.override_load(ctx, addr),
            AnyEngine::Dvr(e) => e.override_load(ctx, addr),
            AnyEngine::Oracle(e) => e.override_load(ctx, addr),
        }
    }
}

/// The prefetch-is-timing-only check: replays the workload on a fresh
/// functional [`sim_isa::Cpu`] for exactly as many instructions as the
/// timing core fetched, then diffs architectural registers and the memory
/// checksum. The timing core executes at fetch and engines only *read*
/// memory, so any divergence means a timing structure leaked into
/// architectural state.
///
/// Valid for every [`RunOutcome`] — even a failed run has functionally
/// executed every instruction it fetched.
pub(crate) fn digest_check(
    workload: &Workload,
    core: &OooCore,
    timing_mem: &sim_isa::SparseMemory,
) -> SanitizeReport {
    let mut san = SanitizeReport::default();
    let mut replay_mem = workload.mem.clone();
    let mut cpu = sim_isa::Cpu::new();
    let steps = core.functional_retired();
    let replayed = cpu.run(&workload.prog, &mut replay_mem, steps);
    match replayed {
        Ok(n) => {
            san.check(n == steps, || {
                format!("digest: functional replay halted after {n} of {steps} instructions")
            });
            let (got, want) = (core.functional_regs(), cpu.regs());
            san.check(got == want, || {
                let r = (0..got.len()).find(|&i| got[i] != want[i]).unwrap_or(0);
                format!(
                    "digest: architectural r{r} diverged (timing {:#x}, functional {:#x})",
                    got[r], want[r]
                )
            });
            san.check(timing_mem.checksum() == replay_mem.checksum(), || {
                "digest: architectural memory checksum diverged from functional replay \
                 (a timing-only structure wrote architectural memory)"
                    .to_string()
            });
        }
        Err(e) => san.check(false, || format!("digest: functional replay faulted: {e}")),
    }
    san
}

/// Runs one workload under one configuration and returns the report.
///
/// The workload is not consumed: its memory image is cloned, so the same
/// built workload can be replayed under every technique (deterministically
/// identical initial state).
///
/// A run that fails (watchdog, budget, injected fault, ...) still returns a
/// report: counters reflect the state at the failure point and
/// [`SimReport::outcome`] carries the typed error.
pub fn simulate(workload: &Workload, cfg: &SimConfig) -> SimReport {
    let t0 = std::time::Instant::now();
    let mut mem = workload.mem.clone();
    let mut hier = MemoryHierarchy::new(cfg.hierarchy);
    if cfg.taint_oracle {
        hier.enable_taint_log();
    }
    if cfg.bounds_oracle {
        hier.enable_spec_extents();
    }
    let mut core = OooCore::new(cfg.core);
    let mut engine = AnyEngine::for_config(cfg);

    // One core on the event scheduler: the single-core run is the n = 1
    // special case of the multi-core path (see `crate::multi`), and ticks
    // cycle-for-cycle like the old inline loop.
    let outcome = {
        let mut comp = CoreComponent::new(
            &mut core,
            &workload.prog,
            &mut mem,
            &mut hier,
            &mut engine,
            cfg.max_instructions,
            None,
        );
        let mut sched = Scheduler::new();
        sched.schedule(0, 0);
        sched.run(&mut [&mut comp]);
        comp.take_outcome()
    };
    let dvr_trace = engine.take_trace();
    let engine_summary = engine.summary();

    let sanitizer = if cfg.core.sanitize {
        let digest = digest_check(workload, &core, &mem);
        core.sanitize_report_mut().merge(&digest);
        Some(core.sanitize_report().clone())
    } else {
        None
    };

    let taint_fills = hier.take_taint_log();
    let spec_extents = hier.take_spec_extents();
    let core_stats = *core.stats();
    let mem_stats = hier.stats().clone();
    let cycles = core_stats.cycles.max(1);
    SimReport {
        technique: cfg.technique,
        workload: workload.name.clone(),
        ipc: core_stats.ipc(),
        mlp: hier.mshr_busy_integral() as f64 / cycles as f64,
        simulated_instructions: core_stats.committed,
        host_seconds: t0.elapsed().as_secs_f64(),
        sampling: None,
        core: core_stats,
        mem: mem_stats,
        engine: engine_summary,
        outcome,
        sanitizer,
        dvr_trace,
        taint_fills,
        spec_extents,
    }
}

/// Convenience: run one workload under several techniques, sharing the
/// built input.
pub fn simulate_all(workload: &Workload, cfgs: &[SimConfig]) -> Vec<SimReport> {
    cfgs.iter().map(|c| simulate(workload, c)).collect()
}

/// Resolves a user-facing thread-count knob: `0` means "use the machine's
/// available parallelism", anything else is taken literally.
pub fn resolve_threads(threads: usize) -> usize {
    if threads == 0 {
        std::thread::available_parallelism().map(usize::from).unwrap_or(1)
    } else {
        threads
    }
}

/// A failed cell in a batched parallel run.
///
/// Produced by [`try_parallel_map`] when a work item panics (twice — each
/// cell gets one retry) or when a worker thread dies without reporting a
/// result for an index it claimed.
#[derive(Clone, PartialEq, Debug)]
pub struct CellError {
    /// Index of the failed work item.
    pub index: usize,
    /// Worker thread that ran the item (`usize::MAX` when unknown — the
    /// worker died before reporting).
    pub worker: usize,
    /// The panic payload, rendered as text.
    pub message: String,
    /// Whether the failure survived the automatic retry.
    pub retried: bool,
}

impl std::fmt::Display for CellError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let worker = if self.worker == usize::MAX {
            "unknown worker".to_string()
        } else {
            format!("worker {}", self.worker)
        };
        let retried = if self.retried { ", retried once" } else { "" };
        write!(f, "cell {} failed on {worker}{retried}: {}", self.index, self.message)
    }
}

impl std::error::Error for CellError {}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Like [`parallel_map`], but isolating panics: each cell runs under
/// `catch_unwind`, gets **one retry**, and failures come back as
/// [`CellError`]s in the result vector instead of tearing down the whole
/// batch. A worker that dies without reporting a claimed index yields a
/// `CellError` naming that index with `worker == usize::MAX`.
///
/// The retry assumes `f` is idempotent — true for the deterministic
/// simulations this crate runs.
pub fn try_parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<Result<T, CellError>>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let run_cell = |i: usize, worker: usize| -> Result<T, CellError> {
        let mut first_failure = None;
        for _attempt in 0..2 {
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(v) => return Ok(v),
                Err(payload) => first_failure = Some(panic_message(payload.as_ref())),
            }
        }
        Err(CellError {
            index: i,
            worker,
            message: first_failure.unwrap_or_default(),
            retried: true,
        })
    };
    let threads = resolve_threads(threads).min(n);
    if threads <= 1 {
        return (0..n).map(|i| run_cell(i, 0)).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let parts: Vec<Vec<(usize, Result<T, CellError>)>> = std::thread::scope(|scope| {
        let next = &next;
        let run_cell = &run_cell;
        let workers: Vec<_> = (0..threads)
            .map(|w| {
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, run_cell(i, w)));
                    }
                    local
                })
            })
            .collect();
        // A worker can only die on a non-unwinding abort (run_cell catches
        // panics); joining still never blocks forever, and missing indices
        // are reported as CellErrors below.
        workers.into_iter().filter_map(|w| w.join().ok()).collect()
    });
    let mut out: Vec<Option<Result<T, CellError>>> = (0..n).map(|_| None).collect();
    for (i, v) in parts.into_iter().flatten() {
        out[i] = Some(v);
    }
    out.into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                Err(CellError {
                    index: i,
                    worker: usize::MAX,
                    message: "worker died without reporting a result for this cell".to_string(),
                    retried: false,
                })
            })
        })
        .collect()
}

/// Maps `f` over `0..n` on up to `threads` scoped OS threads (`0` = all
/// available cores) and returns the results **in index order**.
///
/// Work is distributed by an atomic work-stealing index, so threads that
/// draw short items move on to the next one immediately. Each worker
/// collects `(index, value)` pairs locally — no per-slot locking — and the
/// results are reassembled after the join. With deterministic `f` the
/// output is identical for every thread count, including `threads == 1`,
/// which runs inline without spawning.
///
/// Built on [`try_parallel_map`], so a transiently panicking cell is
/// retried once before the batch fails.
///
/// # Panics
///
/// Panics with a message naming the failed cell index and worker if any
/// cell still fails after its retry. Callers that need partial results
/// should use [`try_parallel_map`] instead.
pub fn parallel_map<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    try_parallel_map(n, threads, f)
        .into_iter()
        .map(|r| match r {
            Ok(v) => v,
            Err(e) => panic!("parallel_map: {e}"),
        })
        .collect()
}

/// Like [`simulate_all`], but running configurations on OS threads
/// (simulations are independent and deterministic, so results are identical
/// to the serial version and returned in input order).
///
/// `threads = 0` uses the machine's available parallelism.
pub fn simulate_all_parallel(
    workload: &Workload,
    cfgs: &[SimConfig],
    threads: usize,
) -> Vec<SimReport> {
    parallel_map(cfgs.len(), threads, |i| simulate(workload, &cfgs[i]))
}
#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{Benchmark, SizeClass};

    #[test]
    fn baseline_run_produces_sane_numbers() {
        let wl = Benchmark::NasIs.build(None, SizeClass::Test, 1);
        let r = simulate(&wl, &SimConfig::new(Technique::Baseline).with_max_instructions(30_000));
        assert!(r.ipc > 0.05 && r.ipc < 5.0, "ipc {}", r.ipc);
        assert!(r.core.committed >= 29_000);
        assert!(r.mem.demand_loads > 0);
        assert!(r.mlp >= 0.0);
    }

    #[test]
    fn workload_is_reusable_across_techniques() {
        let wl = Benchmark::Camel.build(None, SizeClass::Test, 2);
        let a = simulate(&wl, &SimConfig::new(Technique::Baseline).with_max_instructions(20_000));
        let b = simulate(&wl, &SimConfig::new(Technique::Baseline).with_max_instructions(20_000));
        assert_eq!(a.core.cycles, b.core.cycles, "simulation must be deterministic");
    }

    #[test]
    fn parallel_matches_serial() {
        let wl = Benchmark::NasIs.build(None, SizeClass::Test, 4);
        let cfgs: Vec<SimConfig> = [Technique::Baseline, Technique::Vr, Technique::Dvr]
            .into_iter()
            .map(|t| SimConfig::new(t).with_max_instructions(10_000))
            .collect();
        let serial = simulate_all(&wl, &cfgs);
        let parallel = simulate_all_parallel(&wl, &cfgs, 3);
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(s.core.cycles, p.core.cycles);
            assert_eq!(s.technique, p.technique);
            assert_eq!(s.mem.dram_reads(), p.mem.dram_reads());
        }
    }

    #[test]
    fn parallel_map_preserves_order_for_any_thread_count() {
        for threads in [0, 1, 2, 3, 7, 64] {
            let v = parallel_map(17, threads, |i| i * i);
            assert_eq!(v, (0..17).map(|i| i * i).collect::<Vec<_>>(), "threads={threads}");
        }
        assert!(parallel_map(0, 4, |i| i).is_empty());
    }

    #[test]
    fn simulation_reports_host_time() {
        let wl = Benchmark::NasIs.build(None, SizeClass::Test, 1);
        let r = simulate(&wl, &SimConfig::new(Technique::Baseline).with_max_instructions(30_000));
        assert!(r.host_seconds > 0.0);
        assert!(r.sim_instrs_per_host_second() > 0.0);
    }

    #[test]
    fn completed_runs_report_a_complete_outcome() {
        let wl = Benchmark::NasIs.build(None, SizeClass::Test, 1);
        let r = simulate(&wl, &SimConfig::new(Technique::Baseline).with_max_instructions(10_000));
        assert!(r.outcome.is_complete(), "{:?}", r.outcome);
        assert_eq!(r.outcome.kind(), "complete");
    }

    #[test]
    fn exhausted_cycle_budget_fails_with_partial_stats() {
        let wl = Benchmark::NasIs.build(None, SizeClass::Test, 1);
        let cfg = SimConfig::new(Technique::Baseline).with_cycle_budget(2_000);
        let r = simulate(&wl, &cfg);
        assert_eq!(r.outcome.kind(), "cycle_budget_exceeded", "{:?}", r.outcome);
        assert_eq!(r.core.cycles, 2_000, "stats must reflect the failure point");
        assert!(r.core.committed > 0, "partial progress must be visible");
        assert!(r.to_json().contains("\"outcome\":\"cycle_budget_exceeded\""));
    }

    #[test]
    fn try_parallel_map_retries_once_then_reports_the_cell() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        for threads in [1, 4] {
            let attempts: Vec<AtomicUsize> = (0..8).map(|_| AtomicUsize::new(0)).collect();
            let out = try_parallel_map(8, threads, |i| {
                let attempt = attempts[i].fetch_add(1, Ordering::SeqCst);
                // Cell 3 fails once then recovers; cell 5 always fails.
                if i == 3 && attempt == 0 {
                    panic!("transient failure");
                }
                if i == 5 {
                    panic!("permanent failure in cell five");
                }
                i * 10
            });
            for (i, r) in out.iter().enumerate() {
                match r {
                    Ok(v) => assert_eq!(*v, i * 10, "threads={threads}"),
                    Err(e) => {
                        assert_eq!(i, 5, "only cell 5 may fail (threads={threads}): {e}");
                        assert_eq!(e.index, 5);
                        assert!(e.retried);
                        assert!(e.message.contains("permanent failure"), "{e}");
                    }
                }
            }
            assert_eq!(attempts[3].load(Ordering::SeqCst), 2, "cell 3 must be retried");
            assert_eq!(attempts[5].load(Ordering::SeqCst), 2, "cell 5 gets exactly one retry");
        }
    }

    #[test]
    #[should_panic(expected = "cell 2 failed")]
    fn parallel_map_panic_names_the_failed_cell() {
        let _ = parallel_map(4, 1, |i| {
            if i == 2 {
                panic!("boom");
            }
            i
        });
    }

    #[test]
    fn sanitized_run_is_clean_and_byte_identical() {
        let wl = Benchmark::Camel.build(None, SizeClass::Test, 5);
        let cfg = SimConfig::new(Technique::Dvr).with_max_instructions(30_000);
        let plain = simulate(&wl, &cfg);
        let sane = simulate(&wl, &cfg.with_sanitize(true));
        let san = sane.sanitizer.as_ref().expect("sanitizer ledger attached");
        assert!(san.is_clean(), "{}", san.summary());
        assert!(san.checks > 0);
        assert!(plain.sanitizer.is_none());
        // Byte-identical reports modulo wall-clock fields.
        let strip = |mut r: SimReport| {
            r.host_seconds = 0.0;
            r.to_json()
        };
        assert_eq!(strip(plain), strip(sane));
    }

    #[test]
    fn dvr_reports_engine_activity() {
        let wl = Benchmark::Camel.build(None, SizeClass::Small, 3);
        let r = simulate(&wl, &SimConfig::new(Technique::Dvr).with_max_instructions(100_000));
        assert!(r.engine.episodes > 0, "DVR must trigger on Camel: {:?}", r.engine);
        assert!(r.engine.runahead_loads > 0);
    }
}
