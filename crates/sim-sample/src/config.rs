//! Sampling-run configuration.

/// How measured intervals are placed within their periods.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Placement {
    /// One fixed, seeded offset shared by every period (systematic
    /// sampling — the SMARTS default).
    Systematic,
    /// A fresh seeded offset drawn per period (breaks pathological
    /// phase-locking between the period and program loop structure).
    Random,
}

/// Configuration of a sampled run.
///
/// The run is divided into consecutive *periods* of `period` retired
/// instructions. Within each period one measured interval of `interval`
/// instructions runs on the detailed OoO model, preceded by `warmup`
/// detailed instructions whose statistics are discarded; everything else
/// fast-forwards through the functional executor with cache/predictor
/// warming. The measured interval's placement inside the period is seeded
/// ([`Placement`]).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SampleConfig {
    /// Measured detailed instructions per interval.
    pub interval: u64,
    /// Detailed warmup instructions before each measured interval
    /// (statistics discarded).
    pub warmup: u64,
    /// Retired instructions per period (one measured interval per period).
    pub period: u64,
    /// Interval placement policy.
    pub placement: Placement,
    /// Seed for interval placement.
    pub seed: u64,
    /// Region of interest: total retired instructions to cover.
    pub max_instructions: u64,
}

impl Default for SampleConfig {
    fn default() -> Self {
        // Tuned on the 13-benchmark suite at small size / 200k-instruction
        // regions: 10 periods keep the 95% CI meaningful while detailed
        // execution (warmup + interval) covers 20% of the region. Longer
        // regions should raise `period` proportionally — accuracy comes
        // from the interval *count*, cost from the detailed *fraction*.
        SampleConfig {
            interval: 2_000,
            warmup: 2_000,
            period: 20_000,
            placement: Placement::Systematic,
            seed: 42,
            max_instructions: 200_000,
        }
    }
}

impl SampleConfig {
    /// Sets the measured interval length.
    pub fn with_interval(mut self, interval: u64) -> Self {
        self.interval = interval;
        self
    }

    /// Sets the detailed warmup length.
    pub fn with_warmup(mut self, warmup: u64) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the period length.
    pub fn with_period(mut self, period: u64) -> Self {
        self.period = period;
        self
    }

    /// Sets the placement policy.
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Sets the placement seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the region-of-interest length.
    pub fn with_max_instructions(mut self, max_instructions: u64) -> Self {
        self.max_instructions = max_instructions;
        self
    }

    /// Number of whole periods inside the region of interest.
    pub fn periods(&self) -> u64 {
        self.max_instructions / self.period.max(1)
    }

    /// Checks internal consistency; returns a one-line description of the
    /// first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.interval == 0 {
            return Err("sample interval must be nonzero".into());
        }
        if self.period < self.warmup + self.interval {
            return Err(format!(
                "period {} shorter than warmup {} + interval {}",
                self.period, self.warmup, self.interval
            ));
        }
        if self.max_instructions < self.period {
            return Err(format!(
                "max_instructions {} shorter than one period {}",
                self.max_instructions, self.period
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        assert!(SampleConfig::default().validate().is_ok());
        assert_eq!(SampleConfig::default().periods(), 10);
    }

    #[test]
    fn invalid_configs_are_rejected() {
        assert!(SampleConfig::default().with_interval(0).validate().is_err());
        assert!(SampleConfig::default().with_period(10).validate().is_err());
        assert!(SampleConfig::default().with_max_instructions(10).validate().is_err());
    }
}
