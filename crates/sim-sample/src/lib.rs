//! # sim-sample — checkpointed sampled simulation for the DVR reproduction
//!
//! Every figure of the reproduction pays full cycle-level cost for every
//! instruction. This crate implements SMARTS-style *sampled* simulation so
//! medium/large sweeps become tractable: the program fast-forwards through
//! the functional executor (warming cache tags and branch-predictor tables
//! as it goes), runs a short detailed *warmup* to refill pipeline-coupled
//! state, then measures a detailed *interval* on the full OoO model. The
//! per-interval IPC samples aggregate into a [`SampledReport`] with mean,
//! variance, and a 95% confidence interval, which callers compare against
//! the exact run to report measured error.
//!
//! Sampling is *checkpoint-parallel*: one functional pass
//! ([`emit_checkpoints`]) serializes a versioned [`PeriodCheckpoint`] at
//! every period's warmup start, then each period is measured
//! independently from its checkpoint ([`measure_period`]) — in this
//! thread, a worker thread, or a worker process speaking the integer
//! JSON line protocol in [`PeriodResult::to_json`] — and
//! [`merge_periods`] recombines the results into a [`SampledRun`] that
//! is byte-identical regardless of where the periods ran.
//!
//! The subsystem is built from cross-layer hooks added alongside it:
//!
//! * `sim-isa` — architectural checkpoints ([`sim_isa::CpuCheckpoint`],
//!   [`sim_isa::MemoryCheckpoint`]) and the functional fast-forward mode
//!   ([`sim_isa::Cpu::run_warming`] streaming through a
//!   [`sim_isa::WarmSink`]);
//! * `sim-mem` — tag/LRU-only warming fills
//!   ([`sim_mem::MemoryHierarchy::warm_touch`]) and the interval-boundary
//!   drain ([`sim_mem::MemoryHierarchy::quiesce`]);
//! * `sim-ooo` — cores seeded from carried architectural state
//!   ([`sim_ooo::OooCore::with_state`] / [`sim_ooo::OooCore::into_state`]).
//!
//! ## Example
//!
//! ```
//! use sim_isa::{Asm, Reg, SparseMemory};
//! use sim_mem::HierarchyConfig;
//! use sim_ooo::{CoreConfig, NullEngine};
//! use sim_sample::{run_sampled, SampleConfig};
//!
//! // A long pointer-free loop: 4 instructions per iteration.
//! let mut asm = Asm::new();
//! asm.li(Reg::R1, 100_000);
//! let top = asm.here();
//! asm.addi(Reg::R2, Reg::R2, 3);
//! asm.addi(Reg::R1, Reg::R1, -1);
//! asm.bnz(Reg::R1, top);
//! asm.halt();
//! let prog = asm.finish()?;
//!
//! let scfg = SampleConfig::default()
//!     .with_interval(2_000)
//!     .with_warmup(500)
//!     .with_period(10_000)
//!     .with_max_instructions(100_000);
//! let run = run_sampled(
//!     &prog,
//!     &SparseMemory::new(),
//!     CoreConfig::default(),
//!     HierarchyConfig::default(),
//!     &scfg,
//!     || Box::new(NullEngine),
//! )?;
//! assert!(run.report.intervals.len() > 1);
//! assert!(run.report.ipc_mean > 0.0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod config;
mod driver;
mod rng;
mod stats;
mod warm;
mod wire;

pub use checkpoint::{
    CheckpointDecodeError, PeriodCheckpoint, PERIOD_CKPT_MAGIC, PERIOD_CKPT_VERSION,
};
pub use config::{Placement, SampleConfig};
pub use driver::{
    emit_checkpoints, measure_period, merge_periods, run_sampled, EmitResult, PeriodResult,
    SampleError, SampledRun,
};
pub use rng::SplitMix64;
pub use stats::{student_t_975, IntervalStat, SampledReport};
pub use warm::WarmingSink;
pub use wire::WIRE_VERSION;
