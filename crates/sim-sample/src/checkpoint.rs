//! Versioned per-period checkpoints for checkpoint-parallel sampling.
//!
//! Phase 1 of the sampling pipeline ([`emit_checkpoints`]) serializes one
//! [`PeriodCheckpoint`] per period at the point where that period's
//! detailed warmup begins. A checkpoint is everything phase 2 needs to
//! measure the period in isolation — in another thread, or another
//! process entirely:
//!
//! * the architectural CPU state ([`sim_isa::CpuCheckpoint`]),
//! * the dirty-page memory delta against the workload's pristine image
//!   ([`sim_isa::MemoryCheckpoint`]),
//! * the warm cache tag arrays
//!   ([`sim_mem::MemoryHierarchy::warm_state_bytes`]), and
//! * the warm branch-predictor image
//!   ([`sim_ooo::TagePredictor::state_bytes`]).
//!
//! The byte format follows the repository's checkpoint convention: a
//! magic-prefixed little-endian image with exact-length validation, plus
//! a version word so future layout changes fail loudly instead of
//! misparsing.
//!
//! [`emit_checkpoints`]: crate::emit_checkpoints

use sim_isa::{CpuCheckpoint, MemoryCheckpoint};

/// `"DVRP"`: magic prefix of a serialized [`PeriodCheckpoint`].
pub const PERIOD_CKPT_MAGIC: u32 = 0x4456_5250;

/// Current layout version of the [`PeriodCheckpoint`] byte format.
pub const PERIOD_CKPT_VERSION: u32 = 1;

/// Everything needed to measure one sampling period in isolation.
#[derive(Clone, Debug)]
pub struct PeriodCheckpoint {
    /// Period number `k` (merge key: results are combined in `index`
    /// order regardless of completion order).
    pub index: u64,
    /// Absolute retirement count at which the measured interval starts;
    /// the checkpoint itself is taken `warmup` instructions earlier.
    pub measure_at: u64,
    /// Architectural CPU state at the warmup start.
    pub cpu: CpuCheckpoint,
    /// Dirty-page delta of the memory image against the workload's
    /// pristine base at the warmup start.
    pub mem: MemoryCheckpoint,
    /// Warm cache tag arrays ([`sim_mem::MemoryHierarchy::warm_state_bytes`]).
    pub warm_mem: Vec<u8>,
    /// Warm branch-predictor image ([`sim_ooo::TagePredictor::state_bytes`]).
    pub warm_bp: Vec<u8>,
}

/// Why a [`PeriodCheckpoint::decode`] rejected a byte image.
///
/// Each variant names the first structural violation encountered, so a
/// worker fed a torn or mismatched checkpoint file can report *what* is
/// wrong instead of a bare parse failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckpointDecodeError {
    /// The image does not start with [`PERIOD_CKPT_MAGIC`] (or is too
    /// short to hold it) — not a period checkpoint at all.
    BadMagic {
        /// The word actually found, when the image held four bytes.
        found: Option<u32>,
    },
    /// The layout version is not [`PERIOD_CKPT_VERSION`]; written by an
    /// incompatible build.
    UnknownVersion {
        /// The version word in the image.
        found: u32,
    },
    /// The image ended before the named field was complete — a torn
    /// write or truncated file.
    Truncated {
        /// Which field ran out of bytes.
        field: &'static str,
    },
    /// Bytes remain after the last field; the image is longer than one
    /// checkpoint.
    TrailingBytes {
        /// How many bytes were left over.
        extra: usize,
    },
    /// An embedded CPU or memory image failed its own validation.
    BadEmbedded {
        /// Which embedded image was rejected.
        field: &'static str,
    },
}

impl std::fmt::Display for CheckpointDecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointDecodeError::BadMagic { found: Some(w) } => {
                write!(f, "bad checkpoint magic {w:#010x} (want {PERIOD_CKPT_MAGIC:#010x})")
            }
            CheckpointDecodeError::BadMagic { found: None } => {
                write!(f, "image too short to hold the checkpoint magic")
            }
            CheckpointDecodeError::UnknownVersion { found } => {
                write!(f, "unknown checkpoint version {found} (want {PERIOD_CKPT_VERSION})")
            }
            CheckpointDecodeError::Truncated { field } => {
                write!(f, "checkpoint truncated inside `{field}`")
            }
            CheckpointDecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after the checkpoint image")
            }
            CheckpointDecodeError::BadEmbedded { field } => {
                write!(f, "embedded `{field}` image failed validation")
            }
        }
    }
}

impl std::error::Error for CheckpointDecodeError {}

fn put_blob(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u64).to_le_bytes());
    out.extend_from_slice(b);
}

fn take<'a>(b: &'a [u8], off: &mut usize, n: usize) -> Option<&'a [u8]> {
    let s = b.get(*off..*off + n)?;
    *off += n;
    Some(s)
}

fn take_u32(b: &[u8], off: &mut usize) -> Option<u32> {
    Some(u32::from_le_bytes(take(b, off, 4)?.try_into().ok()?))
}

fn take_u64(b: &[u8], off: &mut usize) -> Option<u64> {
    Some(u64::from_le_bytes(take(b, off, 8)?.try_into().ok()?))
}

fn take_blob<'a>(b: &'a [u8], off: &mut usize) -> Option<&'a [u8]> {
    let len = take_u64(b, off)?;
    take(b, off, usize::try_from(len).ok()?)
}

impl PeriodCheckpoint {
    /// Serializes to the versioned little-endian image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&PERIOD_CKPT_MAGIC.to_le_bytes());
        out.extend_from_slice(&PERIOD_CKPT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.index.to_le_bytes());
        out.extend_from_slice(&self.measure_at.to_le_bytes());
        put_blob(&mut out, &self.cpu.to_bytes());
        put_blob(&mut out, &self.mem.to_bytes());
        put_blob(&mut out, &self.warm_mem);
        put_blob(&mut out, &self.warm_bp);
        out
    }

    /// Parses a [`PeriodCheckpoint::to_bytes`] image, naming the first
    /// structural violation on failure: bad magic, unknown version,
    /// truncation (which field ran dry), trailing bytes, or an embedded
    /// image that fails its own validation.
    pub fn decode(b: &[u8]) -> Result<Self, CheckpointDecodeError> {
        use CheckpointDecodeError as E;
        let mut off = 0usize;
        let magic = take_u32(b, &mut off).ok_or(E::BadMagic { found: None })?;
        if magic != PERIOD_CKPT_MAGIC {
            return Err(E::BadMagic { found: Some(magic) });
        }
        let version = take_u32(b, &mut off).ok_or(E::Truncated { field: "version" })?;
        if version != PERIOD_CKPT_VERSION {
            return Err(E::UnknownVersion { found: version });
        }
        let index = take_u64(b, &mut off).ok_or(E::Truncated { field: "index" })?;
        let measure_at = take_u64(b, &mut off).ok_or(E::Truncated { field: "measure_at" })?;
        let cpu =
            CpuCheckpoint::from_bytes(take_blob(b, &mut off).ok_or(E::Truncated { field: "cpu" })?)
                .ok_or(E::BadEmbedded { field: "cpu" })?;
        let mem = MemoryCheckpoint::from_bytes(
            take_blob(b, &mut off).ok_or(E::Truncated { field: "mem" })?,
        )
        .ok_or(E::BadEmbedded { field: "mem" })?;
        let warm_mem = take_blob(b, &mut off).ok_or(E::Truncated { field: "warm_mem" })?.to_vec();
        let warm_bp = take_blob(b, &mut off).ok_or(E::Truncated { field: "warm_bp" })?.to_vec();
        if off != b.len() {
            return Err(E::TrailingBytes { extra: b.len() - off });
        }
        Ok(PeriodCheckpoint { index, measure_at, cpu, mem, warm_mem, warm_bp })
    }

    /// [`PeriodCheckpoint::decode`] with the reason discarded — kept for
    /// callers that only branch on success.
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        Self::decode(b).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::{Cpu, SparseMemory};
    use sim_mem::{HierarchyConfig, MemoryHierarchy};
    use sim_ooo::TagePredictor;

    fn sample_checkpoint() -> PeriodCheckpoint {
        let mut cpu = Cpu::new();
        let mut mem = SparseMemory::new();
        mem.write_u64(0x1000, 0xDEAD_BEEF);
        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        hier.warm_touch(0x1000, true);
        let mut bp = TagePredictor::default();
        let p = bp.predict(0x40);
        bp.update(0x40, true, p);
        cpu.run_warming(
            &sim_isa::parse_program("halt\n").unwrap(),
            &mut mem,
            1,
            &mut sim_isa::NullWarmSink,
        )
        .unwrap();
        PeriodCheckpoint {
            index: 3,
            measure_at: 12_345,
            cpu: cpu.checkpoint(),
            mem: mem.checkpoint_delta(&SparseMemory::new()),
            warm_mem: hier.warm_state_bytes(),
            warm_bp: bp.state_bytes(),
        }
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let ck = sample_checkpoint();
        let bytes = ck.to_bytes();
        let back = PeriodCheckpoint::from_bytes(&bytes).expect("image parses");
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.index, 3);
        assert_eq!(back.measure_at, 12_345);
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let bytes = sample_checkpoint().to_bytes();
        assert!(PeriodCheckpoint::from_bytes(&bytes[1..]).is_none(), "bad magic");
        assert!(PeriodCheckpoint::from_bytes(&bytes[..bytes.len() - 1]).is_none(), "truncated");
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(PeriodCheckpoint::from_bytes(&trailing).is_none(), "trailing bytes");
        let mut wrong_version = bytes;
        wrong_version[4] ^= 0xFF;
        assert!(PeriodCheckpoint::from_bytes(&wrong_version).is_none(), "unknown version");
    }

    #[test]
    fn decode_names_the_violation() {
        use CheckpointDecodeError as E;
        let bytes = sample_checkpoint().to_bytes();
        let fail = |b: &[u8]| PeriodCheckpoint::decode(b).expect_err("image must not parse");

        assert_eq!(fail(&bytes[..3]), E::BadMagic { found: None });
        assert!(matches!(
            fail(&bytes[1..]),
            E::BadMagic { found: Some(w) } if w != PERIOD_CKPT_MAGIC
        ));

        let mut wrong_version = bytes.clone();
        wrong_version[4] ^= 0xFF;
        assert_eq!(fail(&wrong_version), E::UnknownVersion { found: PERIOD_CKPT_VERSION ^ 0xFF });

        assert_eq!(fail(&bytes[..6]), E::Truncated { field: "version" });
        assert_eq!(fail(&bytes[..10]), E::Truncated { field: "index" });
        assert_eq!(fail(&bytes[..20]), E::Truncated { field: "measure_at" });
        assert_eq!(fail(&bytes[..bytes.len() - 1]), E::Truncated { field: "warm_bp" });

        let mut trailing = bytes.clone();
        trailing.extend_from_slice(&[0, 0]);
        assert_eq!(fail(&trailing), E::TrailingBytes { extra: 2 });
    }

    #[test]
    fn truncation_at_every_length_yields_a_typed_error() {
        let bytes = sample_checkpoint().to_bytes();
        // Every proper prefix must fail with *some* typed reason — and
        // never panic — no matter where the cut lands.
        for len in 0..bytes.len() {
            let err =
                PeriodCheckpoint::decode(&bytes[..len]).expect_err("proper prefix must not parse");
            let _ = err.to_string(); // Display is total
        }
    }

    #[test]
    fn decode_error_display_is_actionable() {
        use CheckpointDecodeError as E;
        assert!(E::BadMagic { found: Some(0x1234) }.to_string().contains("0x00001234"));
        assert!(E::UnknownVersion { found: 7 }.to_string().contains("version 7"));
        assert!(E::Truncated { field: "cpu" }.to_string().contains("`cpu`"));
        assert!(E::TrailingBytes { extra: 2 }.to_string().contains("2 trailing"));
        assert!(E::BadEmbedded { field: "mem" }.to_string().contains("`mem`"));
    }
}
