//! Versioned per-period checkpoints for checkpoint-parallel sampling.
//!
//! Phase 1 of the sampling pipeline ([`emit_checkpoints`]) serializes one
//! [`PeriodCheckpoint`] per period at the point where that period's
//! detailed warmup begins. A checkpoint is everything phase 2 needs to
//! measure the period in isolation — in another thread, or another
//! process entirely:
//!
//! * the architectural CPU state ([`sim_isa::CpuCheckpoint`]),
//! * the dirty-page memory delta against the workload's pristine image
//!   ([`sim_isa::MemoryCheckpoint`]),
//! * the warm cache tag arrays
//!   ([`sim_mem::MemoryHierarchy::warm_state_bytes`]), and
//! * the warm branch-predictor image
//!   ([`sim_ooo::TagePredictor::state_bytes`]).
//!
//! The byte format follows the repository's checkpoint convention: a
//! magic-prefixed little-endian image with exact-length validation, plus
//! a version word so future layout changes fail loudly instead of
//! misparsing.
//!
//! [`emit_checkpoints`]: crate::emit_checkpoints

use sim_isa::{CpuCheckpoint, MemoryCheckpoint};

/// `"DVRP"`: magic prefix of a serialized [`PeriodCheckpoint`].
pub const PERIOD_CKPT_MAGIC: u32 = 0x4456_5250;

/// Current layout version of the [`PeriodCheckpoint`] byte format.
pub const PERIOD_CKPT_VERSION: u32 = 1;

/// Everything needed to measure one sampling period in isolation.
#[derive(Clone, Debug)]
pub struct PeriodCheckpoint {
    /// Period number `k` (merge key: results are combined in `index`
    /// order regardless of completion order).
    pub index: u64,
    /// Absolute retirement count at which the measured interval starts;
    /// the checkpoint itself is taken `warmup` instructions earlier.
    pub measure_at: u64,
    /// Architectural CPU state at the warmup start.
    pub cpu: CpuCheckpoint,
    /// Dirty-page delta of the memory image against the workload's
    /// pristine base at the warmup start.
    pub mem: MemoryCheckpoint,
    /// Warm cache tag arrays ([`sim_mem::MemoryHierarchy::warm_state_bytes`]).
    pub warm_mem: Vec<u8>,
    /// Warm branch-predictor image ([`sim_ooo::TagePredictor::state_bytes`]).
    pub warm_bp: Vec<u8>,
}

fn put_blob(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u64).to_le_bytes());
    out.extend_from_slice(b);
}

fn take<'a>(b: &'a [u8], off: &mut usize, n: usize) -> Option<&'a [u8]> {
    let s = b.get(*off..*off + n)?;
    *off += n;
    Some(s)
}

fn take_u32(b: &[u8], off: &mut usize) -> Option<u32> {
    Some(u32::from_le_bytes(take(b, off, 4)?.try_into().ok()?))
}

fn take_u64(b: &[u8], off: &mut usize) -> Option<u64> {
    Some(u64::from_le_bytes(take(b, off, 8)?.try_into().ok()?))
}

fn take_blob<'a>(b: &'a [u8], off: &mut usize) -> Option<&'a [u8]> {
    let len = take_u64(b, off)?;
    take(b, off, usize::try_from(len).ok()?)
}

impl PeriodCheckpoint {
    /// Serializes to the versioned little-endian image.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&PERIOD_CKPT_MAGIC.to_le_bytes());
        out.extend_from_slice(&PERIOD_CKPT_VERSION.to_le_bytes());
        out.extend_from_slice(&self.index.to_le_bytes());
        out.extend_from_slice(&self.measure_at.to_le_bytes());
        put_blob(&mut out, &self.cpu.to_bytes());
        put_blob(&mut out, &self.mem.to_bytes());
        put_blob(&mut out, &self.warm_mem);
        put_blob(&mut out, &self.warm_bp);
        out
    }

    /// Parses a [`PeriodCheckpoint::to_bytes`] image. Returns `None` on a
    /// bad magic number, unknown version, truncation, trailing bytes, or
    /// an embedded image that fails its own validation.
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        let mut off = 0usize;
        if take_u32(b, &mut off)? != PERIOD_CKPT_MAGIC {
            return None;
        }
        if take_u32(b, &mut off)? != PERIOD_CKPT_VERSION {
            return None;
        }
        let index = take_u64(b, &mut off)?;
        let measure_at = take_u64(b, &mut off)?;
        let cpu = CpuCheckpoint::from_bytes(take_blob(b, &mut off)?)?;
        let mem = MemoryCheckpoint::from_bytes(take_blob(b, &mut off)?)?;
        let warm_mem = take_blob(b, &mut off)?.to_vec();
        let warm_bp = take_blob(b, &mut off)?.to_vec();
        if off != b.len() {
            return None;
        }
        Some(PeriodCheckpoint { index, measure_at, cpu, mem, warm_mem, warm_bp })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::{Cpu, SparseMemory};
    use sim_mem::{HierarchyConfig, MemoryHierarchy};
    use sim_ooo::TagePredictor;

    fn sample_checkpoint() -> PeriodCheckpoint {
        let mut cpu = Cpu::new();
        let mut mem = SparseMemory::new();
        mem.write_u64(0x1000, 0xDEAD_BEEF);
        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        hier.warm_touch(0x1000, true);
        let mut bp = TagePredictor::default();
        let p = bp.predict(0x40);
        bp.update(0x40, true, p);
        cpu.run_warming(
            &sim_isa::parse_program("halt\n").unwrap(),
            &mut mem,
            1,
            &mut sim_isa::NullWarmSink,
        )
        .unwrap();
        PeriodCheckpoint {
            index: 3,
            measure_at: 12_345,
            cpu: cpu.checkpoint(),
            mem: mem.checkpoint_delta(&SparseMemory::new()),
            warm_mem: hier.warm_state_bytes(),
            warm_bp: bp.state_bytes(),
        }
    }

    #[test]
    fn roundtrip_is_byte_identical() {
        let ck = sample_checkpoint();
        let bytes = ck.to_bytes();
        let back = PeriodCheckpoint::from_bytes(&bytes).expect("image parses");
        assert_eq!(back.to_bytes(), bytes);
        assert_eq!(back.index, 3);
        assert_eq!(back.measure_at, 12_345);
    }

    #[test]
    fn corrupt_images_are_rejected() {
        let bytes = sample_checkpoint().to_bytes();
        assert!(PeriodCheckpoint::from_bytes(&bytes[1..]).is_none(), "bad magic");
        assert!(PeriodCheckpoint::from_bytes(&bytes[..bytes.len() - 1]).is_none(), "truncated");
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(PeriodCheckpoint::from_bytes(&trailing).is_none(), "trailing bytes");
        let mut wrong_version = bytes;
        wrong_version[4] ^= 0xFF;
        assert!(PeriodCheckpoint::from_bytes(&wrong_version).is_none(), "unknown version");
    }
}
