//! The warming hook connecting the functional executor to the
//! microarchitectural state being warmed.

use sim_isa::WarmSink;
use sim_mem::MemoryHierarchy;
use sim_ooo::TagePredictor;

/// A [`WarmSink`] that trains the cache hierarchy and the branch predictor
/// from the functional fast-forward stream.
///
/// Loads and stores install their lines via
/// [`MemoryHierarchy::warm_touch`] (tags and LRU only — no MSHRs, DRAM
/// bandwidth, or demand statistics). Conditional branches run the same
/// predict-then-update sequence the detailed core's fetch stage performs,
/// so TAGE/loop-predictor tables and global history evolve exactly as if
/// the branches had been fetched.
pub struct WarmingSink<'a> {
    hier: &'a mut MemoryHierarchy,
    bp: &'a mut TagePredictor,
}

impl<'a> WarmingSink<'a> {
    /// Wraps the hierarchy and predictor to be warmed.
    pub fn new(hier: &'a mut MemoryHierarchy, bp: &'a mut TagePredictor) -> Self {
        WarmingSink { hier, bp }
    }
}

impl WarmSink for WarmingSink<'_> {
    fn load(&mut self, _pc: usize, addr: u64, _width: u64) {
        self.hier.warm_touch(addr, false);
    }

    fn store(&mut self, _pc: usize, addr: u64, _width: u64) {
        self.hier.warm_touch(addr, true);
    }

    fn branch(&mut self, pc: usize, taken: bool) {
        let predicted = self.bp.predict(pc);
        self.bp.update(pc, taken, predicted);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::{Asm, Cpu, Reg, SparseMemory};
    use sim_mem::HierarchyConfig;

    #[test]
    fn warming_trains_caches_and_predictor() {
        // A loop striding over an array: its lines should be resident and
        // its backward branch predicted after warming.
        let mut asm = Asm::new();
        let (base, i, n, t, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        asm.li(base, 0x1000);
        asm.li(i, 0);
        asm.li(n, 256);
        let top = asm.here();
        asm.ld8_idx(t, base, i, 3);
        asm.addi(i, i, 1);
        asm.slt(c, i, n);
        asm.bnz(c, top);
        asm.halt();
        let prog = asm.finish().unwrap();

        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        let mut bp = TagePredictor::default();
        let mut cpu = Cpu::new();
        let mut mem = SparseMemory::new();
        {
            let mut sink = WarmingSink::new(&mut hier, &mut bp);
            cpu.run_warming(&prog, &mut mem, 100_000, &mut sink).unwrap();
        }
        assert!(cpu.is_halted());
        assert!(hier.l1().contains(0x1000 / 64));
        assert_eq!(hier.stats().demand_loads, 0, "warming must not count as demand");
        // 256 iterations of a taken backward branch: a warmed predictor
        // says taken.
        assert!(bp.predict(3 + 3));
    }
}
