//! The sampling driver: alternates fast-forward, warmup, and measured
//! detailed intervals over one program.

use std::error::Error;
use std::fmt;

use sim_isa::{Cpu, ExecError, Program, SparseMemory};
use sim_mem::{HierarchyConfig, MemStats, MemoryHierarchy};
use sim_ooo::{CoreConfig, CoreStats, OooCore, RunaheadEngine, SimError, TagePredictor};

use crate::config::{Placement, SampleConfig};
use crate::rng::SplitMix64;
use crate::stats::{IntervalStat, SampledReport};
use crate::warm::WarmingSink;

/// Failure of a sampled run.
#[derive(Debug)]
pub enum SampleError {
    /// The sampling configuration is inconsistent.
    Config(String),
    /// The functional fast-forward executor faulted.
    Exec(ExecError),
    /// A detailed interval failed.
    Sim(SimError),
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::Config(msg) => write!(f, "invalid sample config: {msg}"),
            SampleError::Exec(e) => write!(f, "fast-forward fault: {e}"),
            SampleError::Sim(e) => write!(f, "detailed interval failed: {e}"),
        }
    }
}

impl Error for SampleError {}

impl From<ExecError> for SampleError {
    fn from(e: ExecError) -> Self {
        SampleError::Exec(e)
    }
}

impl From<SimError> for SampleError {
    fn from(e: SimError) -> Self {
        SampleError::Sim(e)
    }
}

/// The result of a sampled run: the statistical report plus the aggregate
/// detailed-mode counters a `SimReport` is built from.
#[derive(Clone, Debug)]
pub struct SampledRun {
    /// Per-interval samples and their aggregation.
    pub report: SampledReport,
    /// Core counters summed over *measured* intervals only.
    pub core: CoreStats,
    /// Hierarchy counters accumulated over all detailed execution
    /// (warmup + measured; functional warming contributes nothing).
    pub mem: MemStats,
    /// MSHR-occupancy integral accumulated inside measured intervals.
    pub measured_mshr_integral: u64,
    /// Whether the program ran to completion (halted) within the region
    /// of interest.
    pub halted: bool,
}

fn accumulate(into: &mut CoreStats, s: &CoreStats) {
    into.cycles += s.cycles;
    into.committed += s.committed;
    into.rob_full_stall_cycles += s.rob_full_stall_cycles;
    into.full_rob_stall_events += s.full_rob_stall_events;
    into.commit_blocked_engine_cycles += s.commit_blocked_engine_cycles;
    into.cond_branches += s.cond_branches;
    into.branch_mispredicts += s.branch_mispredicts;
    into.loads += s.loads;
    into.stores += s.stores;
    into.store_forwards += s.store_forwards;
}

/// Field-wise `after - before` of two cumulative-counter snapshots (a
/// measured segment inside one core's run).
fn delta(after: &CoreStats, before: &CoreStats) -> CoreStats {
    CoreStats {
        cycles: after.cycles - before.cycles,
        committed: after.committed - before.committed,
        rob_full_stall_cycles: after.rob_full_stall_cycles - before.rob_full_stall_cycles,
        full_rob_stall_events: after.full_rob_stall_events - before.full_rob_stall_events,
        commit_blocked_engine_cycles: after.commit_blocked_engine_cycles
            - before.commit_blocked_engine_cycles,
        cond_branches: after.cond_branches - before.cond_branches,
        branch_mispredicts: after.branch_mispredicts - before.branch_mispredicts,
        loads: after.loads - before.loads,
        stores: after.stores - before.stores,
        store_forwards: after.store_forwards - before.store_forwards,
    }
}

/// Runs `prog` sampled: functional fast-forward with warming between
/// seeded detailed intervals, per [`SampleConfig`].
///
/// One architectural thread (CPU + memory image) runs the whole program
/// exactly once; only the fraction inside detailed intervals pays
/// cycle-level cost. `make_engine` supplies a fresh runahead engine per
/// detailed interval — engine state (including DVR's runahead subthread)
/// dies with its interval, which is how the engine "quiesces cleanly" at
/// interval boundaries. The hierarchy and branch predictor stay warm
/// across the run; in-flight hierarchy timing drains at each boundary
/// ([`MemoryHierarchy::quiesce`]).
///
/// Everything is deterministic: same program, configs, and seed produce a
/// bit-identical [`SampledRun`] regardless of host or thread count.
///
/// # Errors
///
/// [`SampleError::Config`] for inconsistent configurations, otherwise the
/// first fast-forward or detailed-interval failure.
pub fn run_sampled<F>(
    prog: &Program,
    base_mem: &SparseMemory,
    core_cfg: CoreConfig,
    hier_cfg: HierarchyConfig,
    scfg: &SampleConfig,
    mut make_engine: F,
) -> Result<SampledRun, SampleError>
where
    F: FnMut() -> Box<dyn RunaheadEngine>,
{
    scfg.validate().map_err(SampleError::Config)?;

    let mut mem = base_mem.clone();
    let mut cpu = Cpu::new();
    let mut bp = TagePredictor::default();
    let mut hier = MemoryHierarchy::new(hier_cfg);
    let mut rng = SplitMix64::new(scfg.seed);

    let roi = scfg.max_instructions;
    // Offsets of the measured interval inside its period: at least `warmup`
    // in (so the warmup fits in the same period), at most flush with the
    // period's end.
    let slack = scfg.period - scfg.warmup - scfg.interval;
    let systematic_off = scfg.warmup + rng.next_below(slack + 1);

    let mut intervals = Vec::new();
    let mut agg = CoreStats::default();
    let mut warmup_total = 0u64;
    let mut measured_integral = 0u64;

    for k in 0..scfg.periods() {
        if cpu.is_halted() {
            break;
        }
        let off = match scfg.placement {
            Placement::Systematic => systematic_off,
            Placement::Random => scfg.warmup + rng.next_below(slack + 1),
        };
        let measure_at = k * scfg.period + off;
        if measure_at >= roi {
            break;
        }

        // 1. Functional fast-forward (with warming) to the warmup start.
        let warm_at = measure_at - scfg.warmup;
        if cpu.retired() < warm_at {
            let todo = warm_at - cpu.retired();
            let mut sink = WarmingSink::new(&mut hier, &mut bp);
            cpu.run_warming(prog, &mut mem, todo, &mut sink)?;
            if cpu.is_halted() {
                break;
            }
        }

        // 2+3. One detailed core per period: the discarded warmup and the
        // measured interval share it (via resumable segments), so
        // measurement starts from the warm pipeline the warmup filled
        // instead of charging every interval a pipeline refill. The
        // previous period's frontier may already have overshot into (or
        // past) the warmup window, so budgets are relative to the actual
        // position.
        hier.quiesce();
        let mut core = OooCore::with_state(core_cfg, cpu, bp);
        let mut engine = make_engine();
        let warmup_budget = measure_at.saturating_sub(core.functional_retired());
        if warmup_budget > 0 {
            core.run_segment(prog, &mut mem, &mut hier, engine.as_mut(), warmup_budget)?;
        }
        let warm_snap = *core.stats();
        warmup_total += warm_snap.committed;
        // A commit shortfall means the program halted inside the warmup.
        let budget = scfg.interval.min(roi.saturating_sub(core.functional_retired()));
        if warm_snap.committed < warmup_budget || budget == 0 {
            (cpu, bp) = core.into_state();
            break;
        }

        let integral_before = hier.mshr_busy_integral();
        let start_retired = core.functional_retired();
        core.run_segment(prog, &mut mem, &mut hier, engine.as_mut(), budget)?;
        let st = delta(core.stats(), &warm_snap);
        let integral_delta = hier.mshr_busy_integral() - integral_before;
        intervals.push(IntervalStat {
            start_retired,
            committed: st.committed,
            cycles: st.cycles,
            ipc: st.ipc(),
            mlp: integral_delta as f64 / st.cycles.max(1) as f64,
        });
        accumulate(&mut agg, &st);
        measured_integral += integral_delta;
        (cpu, bp) = core.into_state();
    }

    // Cover the tail of the region functionally so `total_retired` spans
    // the full ROI (and the program gets to halt if it can).
    if !cpu.is_halted() && cpu.retired() < roi {
        let todo = roi - cpu.retired();
        let mut sink = WarmingSink::new(&mut hier, &mut bp);
        cpu.run_warming(prog, &mut mem, todo, &mut sink)?;
    }
    hier.quiesce();
    hier.finalize();

    let halted = cpu.is_halted();
    let report = SampledReport::from_intervals(intervals, warmup_total, cpu.retired());
    Ok(SampledRun {
        report,
        core: agg,
        mem: hier.stats().clone(),
        measured_mshr_integral: measured_integral,
        halted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::{Asm, Reg};
    use sim_ooo::NullEngine;

    /// A strided-load loop long enough for several periods.
    fn strided_loop() -> (Program, SparseMemory) {
        let mut asm = Asm::new();
        let (base, i, n, t, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        asm.li(base, 0x10_000);
        asm.li(i, 0);
        asm.li(n, 100_000);
        let top = asm.here();
        asm.ld8_idx(t, base, i, 3);
        asm.addi(i, i, 1);
        asm.slt(c, i, n);
        asm.bnz(c, top);
        asm.halt();
        (asm.finish().unwrap(), SparseMemory::new())
    }

    fn scfg() -> SampleConfig {
        SampleConfig::default()
            .with_interval(5_000)
            .with_warmup(2_000)
            .with_period(25_000)
            .with_max_instructions(200_000)
    }

    #[test]
    fn sampled_run_measures_every_period() {
        let (prog, mem) = strided_loop();
        let run = run_sampled(
            &prog,
            &mem,
            CoreConfig::default(),
            HierarchyConfig::default(),
            &scfg(),
            || Box::new(NullEngine),
        )
        .unwrap();
        assert_eq!(run.report.interval_count(), 8);
        assert!(run.report.ipc_mean > 0.0);
        assert!(run.report.ipc_ci95.is_finite());
        assert_eq!(
            run.report.detailed_instructions
                + run.report.warmup_instructions
                + run.report.ffwd_instructions,
            run.report.total_retired
        );
        assert!(run.report.ffwd_instructions > run.report.detailed_instructions);
    }

    #[test]
    fn sampled_run_is_deterministic() {
        let (prog, mem) = strided_loop();
        let go = || {
            run_sampled(
                &prog,
                &mem,
                CoreConfig::default(),
                HierarchyConfig::default(),
                &scfg(),
                || Box::new(NullEngine),
            )
            .unwrap()
        };
        let a = go();
        let b = go();
        assert_eq!(a.report, b.report);
        assert_eq!(a.core.cycles, b.core.cycles);
        assert_eq!(a.measured_mshr_integral, b.measured_mshr_integral);
    }

    #[test]
    fn random_placement_stays_within_periods() {
        let (prog, mem) = strided_loop();
        let cfg = scfg().with_placement(Placement::Random).with_seed(7);
        let run = run_sampled(
            &prog,
            &mem,
            CoreConfig::default(),
            HierarchyConfig::default(),
            &cfg,
            || Box::new(NullEngine),
        )
        .unwrap();
        assert!(run.report.interval_count() >= 7);
        for (k, s) in run.report.intervals.iter().enumerate() {
            assert!(s.start_retired >= k as u64 * cfg.period + cfg.warmup);
            assert!(s.start_retired < (k as u64 + 1) * cfg.period);
        }
    }

    #[test]
    fn short_program_halts_cleanly() {
        let mut asm = Asm::new();
        asm.li(Reg::R1, 10);
        let top = asm.here();
        asm.addi(Reg::R1, Reg::R1, -1);
        asm.bnz(Reg::R1, top);
        asm.halt();
        let prog = asm.finish().unwrap();
        let run = run_sampled(
            &prog,
            &SparseMemory::new(),
            CoreConfig::default(),
            HierarchyConfig::default(),
            &SampleConfig::default()
                .with_interval(10)
                .with_warmup(0)
                .with_period(20)
                .with_max_instructions(1_000),
            || Box::new(NullEngine),
        )
        .unwrap();
        assert!(run.halted);
        assert!(run.report.total_retired < 1_000);
    }

    #[test]
    fn invalid_config_is_reported() {
        let (prog, mem) = strided_loop();
        let err = run_sampled(
            &prog,
            &mem,
            CoreConfig::default(),
            HierarchyConfig::default(),
            &SampleConfig::default().with_interval(0),
            || Box::new(NullEngine),
        )
        .unwrap_err();
        assert!(matches!(err, SampleError::Config(_)));
    }
}
