//! The checkpoint-parallel sampling driver.
//!
//! Sampling is a two-phase pipeline:
//!
//! 1. **Emit** ([`emit_checkpoints`]): one functional fast-forward pass
//!    over the whole region of interest, warming cache tags and
//!    branch-predictor tables as it goes, which serializes a
//!    [`PeriodCheckpoint`] at every period's warmup start.
//! 2. **Measure** ([`measure_period`]): every (warmup + measured)
//!    interval restores its checkpoint into a fresh engine and runs
//!    independently of every other period — in this thread, a worker
//!    thread, or another process entirely.
//!
//! [`merge_periods`] combines the per-period results in period order
//! into a [`SampledRun`]; because each period is a pure function of its
//! checkpoint, the merged result is byte-identical no matter where or in
//! what order the periods ran. [`run_sampled`] composes the three steps
//! serially and is the reference against which every parallel dispatch
//! is checked.

use std::error::Error;
use std::fmt;

use sim_isa::{Cpu, ExecError, Program, SparseMemory};
use sim_mem::{HierarchyConfig, MemStats, MemoryHierarchy};
use sim_ooo::{CoreConfig, CoreStats, OooCore, RunaheadEngine, SimError, TagePredictor};

use crate::checkpoint::PeriodCheckpoint;
use crate::config::{Placement, SampleConfig};
use crate::rng::SplitMix64;
use crate::stats::{IntervalStat, SampledReport};
use crate::warm::WarmingSink;

/// Failure of a sampled run.
#[derive(Debug)]
pub enum SampleError {
    /// The sampling configuration is inconsistent.
    Config(String),
    /// The functional fast-forward executor faulted.
    Exec(ExecError),
    /// A detailed interval failed.
    Sim(SimError),
    /// A period checkpoint failed to serialize or restore.
    Checkpoint(String),
    /// A sample worker (thread or process) died or produced garbage.
    Worker(String),
}

impl fmt::Display for SampleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SampleError::Config(msg) => write!(f, "invalid sample config: {msg}"),
            SampleError::Exec(e) => write!(f, "fast-forward fault: {e}"),
            SampleError::Sim(e) => write!(f, "detailed interval failed: {e}"),
            SampleError::Checkpoint(msg) => write!(f, "bad period checkpoint: {msg}"),
            SampleError::Worker(msg) => write!(f, "sample worker failed: {msg}"),
        }
    }
}

impl Error for SampleError {}

impl From<ExecError> for SampleError {
    fn from(e: ExecError) -> Self {
        SampleError::Exec(e)
    }
}

impl From<SimError> for SampleError {
    fn from(e: SimError) -> Self {
        SampleError::Sim(e)
    }
}

/// The result of a sampled run: the statistical report plus the aggregate
/// detailed-mode counters a `SimReport` is built from.
#[derive(Clone, Debug)]
pub struct SampledRun {
    /// Per-interval samples and their aggregation.
    pub report: SampledReport,
    /// Core counters summed over *measured* intervals only.
    pub core: CoreStats,
    /// Hierarchy counters accumulated over all detailed execution
    /// (warmup + measured; functional warming contributes nothing).
    pub mem: MemStats,
    /// MSHR-occupancy integral accumulated inside measured intervals.
    pub measured_mshr_integral: u64,
    /// Whether the program ran to completion (halted) within the region
    /// of interest.
    pub halted: bool,
}

/// Output of the emit phase: the per-period checkpoints plus the
/// whole-region facts only the full functional pass knows.
#[derive(Clone, Debug)]
pub struct EmitResult {
    /// One checkpoint per period whose warmup start lies inside the
    /// region of interest, in period order.
    pub checkpoints: Vec<PeriodCheckpoint>,
    /// Instructions the functional pass retired (the whole region of
    /// interest, or less if the program halted first).
    pub total_retired: u64,
    /// Whether the program halted inside the region of interest.
    pub halted: bool,
}

/// The integer-only measurement of one period — everything
/// [`merge_periods`] needs, in a form that survives a JSON round-trip
/// through a worker process bit-exactly (no floats cross the wire;
/// derived rates are recomputed at merge time).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PeriodResult {
    /// Period number (the merge key).
    pub index: u64,
    /// Functional frontier at the start of the measured interval
    /// (0 when `measured` is false).
    pub start_retired: u64,
    /// Instructions committed by the discarded detailed warmup.
    pub warmup_committed: u64,
    /// MSHR-occupancy integral over the measured interval.
    pub mshr_integral: u64,
    /// Whether the measured interval actually ran (false when the
    /// program halted inside the warmup or the region ended first).
    pub measured: bool,
    /// Core counters of the measured interval only.
    pub core: CoreStats,
    /// Hierarchy counters of this period's detailed execution
    /// (warmup + measured), finalized.
    pub mem: MemStats,
}

fn accumulate(into: &mut CoreStats, s: &CoreStats) {
    into.cycles += s.cycles;
    into.committed += s.committed;
    into.rob_full_stall_cycles += s.rob_full_stall_cycles;
    into.full_rob_stall_events += s.full_rob_stall_events;
    into.commit_blocked_engine_cycles += s.commit_blocked_engine_cycles;
    into.cond_branches += s.cond_branches;
    into.branch_mispredicts += s.branch_mispredicts;
    into.loads += s.loads;
    into.stores += s.stores;
    into.store_forwards += s.store_forwards;
}

/// Field-wise `after - before` of two cumulative-counter snapshots (a
/// measured segment inside one core's run).
fn delta(after: &CoreStats, before: &CoreStats) -> CoreStats {
    CoreStats {
        cycles: after.cycles - before.cycles,
        committed: after.committed - before.committed,
        rob_full_stall_cycles: after.rob_full_stall_cycles - before.rob_full_stall_cycles,
        full_rob_stall_events: after.full_rob_stall_events - before.full_rob_stall_events,
        commit_blocked_engine_cycles: after.commit_blocked_engine_cycles
            - before.commit_blocked_engine_cycles,
        cond_branches: after.cond_branches - before.cond_branches,
        branch_mispredicts: after.branch_mispredicts - before.branch_mispredicts,
        loads: after.loads - before.loads,
        stores: after.stores - before.stores,
        store_forwards: after.store_forwards - before.store_forwards,
    }
}

/// Phase 1: one functional fast-forward pass over the region of interest
/// that emits a [`PeriodCheckpoint`] at every period's warmup start.
///
/// The pass warms cache tags and branch-predictor tables continuously —
/// including through the windows the detailed phase will re-execute — so
/// each checkpoint's warm state is a pure function of the instruction
/// stream up to its warmup start, independent of how any other period is
/// later measured. Interval placement draws from the same seeded
/// [`SplitMix64`] stream in the same order for every placement policy,
/// so checkpoint positions are deterministic.
///
/// # Errors
///
/// [`SampleError::Config`] for inconsistent configurations, otherwise
/// the first fast-forward fault.
pub fn emit_checkpoints(
    prog: &Program,
    base_mem: &SparseMemory,
    hier_cfg: HierarchyConfig,
    scfg: &SampleConfig,
) -> Result<EmitResult, SampleError> {
    scfg.validate().map_err(SampleError::Config)?;

    let mut mem = base_mem.clone();
    let mut cpu = Cpu::new();
    let mut bp = TagePredictor::default();
    let mut hier = MemoryHierarchy::new(hier_cfg);
    let mut rng = SplitMix64::new(scfg.seed);

    let roi = scfg.max_instructions;
    // Offsets of the measured interval inside its period: at least `warmup`
    // in (so the warmup fits in the same period), at most flush with the
    // period's end.
    let slack = scfg.period - scfg.warmup - scfg.interval;
    let systematic_off = scfg.warmup + rng.next_below(slack + 1);

    let mut checkpoints = Vec::new();
    for k in 0..scfg.periods() {
        if cpu.is_halted() {
            break;
        }
        let off = match scfg.placement {
            Placement::Systematic => systematic_off,
            Placement::Random => scfg.warmup + rng.next_below(slack + 1),
        };
        let measure_at = k * scfg.period + off;
        if measure_at >= roi {
            break;
        }

        // Fast-forward (with warming) to the warmup start. `warm_at` is
        // strictly increasing across periods (it lies in
        // [k*period, (k+1)*period - interval - warmup]), so the frontier
        // never has to move backwards.
        let warm_at = measure_at - scfg.warmup;
        if cpu.retired() < warm_at {
            let todo = warm_at - cpu.retired();
            let mut sink = WarmingSink::new(&mut hier, &mut bp);
            cpu.run_warming(prog, &mut mem, todo, &mut sink)?;
            if cpu.is_halted() {
                break;
            }
        }
        checkpoints.push(PeriodCheckpoint {
            index: k,
            measure_at,
            cpu: cpu.checkpoint(),
            mem: mem.checkpoint_delta(base_mem),
            warm_mem: hier.warm_state_bytes(),
            warm_bp: bp.state_bytes(),
        });
    }

    // Cover the tail of the region functionally so `total_retired` spans
    // the full ROI (and the program gets to halt if it can).
    if !cpu.is_halted() && cpu.retired() < roi {
        let todo = roi - cpu.retired();
        let mut sink = WarmingSink::new(&mut hier, &mut bp);
        cpu.run_warming(prog, &mut mem, todo, &mut sink)?;
    }

    Ok(EmitResult { checkpoints, total_retired: cpu.retired(), halted: cpu.is_halted() })
}

/// Phase 2: measures one period from its checkpoint, independently of
/// every other period.
///
/// Restores the architectural state, warm hierarchy, and warm predictor
/// from `ck`, runs the discarded detailed warmup and then the measured
/// interval on one detailed core (via resumable segments, so measurement
/// starts from the warm pipeline the warmup filled), and returns the
/// integer-only [`PeriodResult`]. `make_engine` supplies this period's
/// fresh runahead engine — engine state (including DVR's runahead
/// subthread) dies with the period, which is how the engine "quiesces
/// cleanly" at interval boundaries.
///
/// # Errors
///
/// [`SampleError::Checkpoint`] if a warm-state image fails validation,
/// otherwise the first detailed-interval failure.
pub fn measure_period<F>(
    prog: &Program,
    base_mem: &SparseMemory,
    core_cfg: CoreConfig,
    hier_cfg: HierarchyConfig,
    scfg: &SampleConfig,
    ck: &PeriodCheckpoint,
    make_engine: F,
) -> Result<PeriodResult, SampleError>
where
    F: FnOnce() -> Box<dyn RunaheadEngine>,
{
    scfg.validate().map_err(SampleError::Config)?;
    let roi = scfg.max_instructions;

    let mut mem = SparseMemory::restore_from(base_mem, &ck.mem);
    let cpu = Cpu::from_checkpoint(&ck.cpu);
    let mut hier = MemoryHierarchy::from_warm_state(hier_cfg, &ck.warm_mem).ok_or_else(|| {
        SampleError::Checkpoint(format!("period {}: invalid warm hierarchy image", ck.index))
    })?;
    let bp = TagePredictor::from_state_bytes(&ck.warm_bp).ok_or_else(|| {
        SampleError::Checkpoint(format!("period {}: invalid warm predictor image", ck.index))
    })?;

    let mut core = OooCore::with_state(core_cfg, cpu, bp);
    let mut engine = make_engine();
    let warmup_budget = ck.measure_at.saturating_sub(core.functional_retired());
    if warmup_budget > 0 {
        core.run_segment(prog, &mut mem, &mut hier, engine.as_mut(), warmup_budget)?;
    }
    let warm_snap = *core.stats();
    let mut res = PeriodResult {
        index: ck.index,
        start_retired: 0,
        warmup_committed: warm_snap.committed,
        mshr_integral: 0,
        measured: false,
        core: CoreStats::default(),
        mem: MemStats::default(),
    };

    // A commit shortfall means the program halted inside the warmup; a
    // zero budget means the region of interest ended before the interval.
    let budget = scfg.interval.min(roi.saturating_sub(core.functional_retired()));
    if warm_snap.committed >= warmup_budget && budget > 0 {
        let integral_before = hier.mshr_busy_integral();
        res.start_retired = core.functional_retired();
        core.run_segment(prog, &mut mem, &mut hier, engine.as_mut(), budget)?;
        res.core = delta(core.stats(), &warm_snap);
        res.mshr_integral = hier.mshr_busy_integral() - integral_before;
        res.measured = true;
    }
    hier.quiesce();
    hier.finalize();
    res.mem = hier.stats().clone();
    Ok(res)
}

/// Combines per-period results (in any order) into a [`SampledRun`].
///
/// Results are sorted by period index before merging, and every derived
/// float (per-interval IPC and MLP, the report's aggregates) is
/// recomputed here from the integer counters — so the merged run is
/// byte-identical no matter which thread or process measured each
/// period. `total_retired` and `halted` come from the emit phase
/// ([`EmitResult`]).
pub fn merge_periods(
    mut periods: Vec<PeriodResult>,
    total_retired: u64,
    halted: bool,
) -> SampledRun {
    periods.sort_by_key(|p| p.index);

    let mut intervals = Vec::new();
    let mut agg = CoreStats::default();
    let mut mem = MemStats::default();
    let mut warmup_total = 0u64;
    let mut measured_integral = 0u64;
    for p in &periods {
        warmup_total += p.warmup_committed;
        mem.accumulate(&p.mem);
        if p.measured {
            intervals.push(IntervalStat {
                start_retired: p.start_retired,
                committed: p.core.committed,
                cycles: p.core.cycles,
                ipc: p.core.ipc(),
                mlp: p.mshr_integral as f64 / p.core.cycles.max(1) as f64,
            });
            accumulate(&mut agg, &p.core);
            measured_integral += p.mshr_integral;
        }
    }

    let report = SampledReport::from_intervals(intervals, warmup_total, total_retired);
    SampledRun { report, core: agg, mem, measured_mshr_integral: measured_integral, halted }
}

/// Runs `prog` sampled: emits every period checkpoint in one functional
/// pass, measures each period from its checkpoint, and merges the
/// results, per [`SampleConfig`].
///
/// This is the sequential composition of [`emit_checkpoints`],
/// [`measure_period`], and [`merge_periods`] — the reference semantics
/// that thread- and process-parallel dispatchers must reproduce
/// byte-identically. Only the fraction inside detailed (warmup +
/// measured) windows pays cycle-level cost. `make_engine` supplies a
/// fresh runahead engine per period.
///
/// Everything is deterministic: same program, configs, and seed produce a
/// bit-identical [`SampledRun`] regardless of host, thread count, or
/// whether periods were measured in-process or by workers.
///
/// # Errors
///
/// [`SampleError::Config`] for inconsistent configurations, otherwise the
/// first fast-forward, checkpoint, or detailed-interval failure.
pub fn run_sampled<F>(
    prog: &Program,
    base_mem: &SparseMemory,
    core_cfg: CoreConfig,
    hier_cfg: HierarchyConfig,
    scfg: &SampleConfig,
    mut make_engine: F,
) -> Result<SampledRun, SampleError>
where
    F: FnMut() -> Box<dyn RunaheadEngine>,
{
    let emit = emit_checkpoints(prog, base_mem, hier_cfg, scfg)?;
    let mut periods = Vec::with_capacity(emit.checkpoints.len());
    for ck in &emit.checkpoints {
        periods.push(measure_period(
            prog,
            base_mem,
            core_cfg,
            hier_cfg,
            scfg,
            ck,
            &mut make_engine,
        )?);
    }
    Ok(merge_periods(periods, emit.total_retired, emit.halted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::{Asm, Reg};
    use sim_ooo::NullEngine;

    /// A strided-load loop long enough for several periods.
    fn strided_loop() -> (Program, SparseMemory) {
        let mut asm = Asm::new();
        let (base, i, n, t, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        asm.li(base, 0x10_000);
        asm.li(i, 0);
        asm.li(n, 100_000);
        let top = asm.here();
        asm.ld8_idx(t, base, i, 3);
        asm.addi(i, i, 1);
        asm.slt(c, i, n);
        asm.bnz(c, top);
        asm.halt();
        (asm.finish().unwrap(), SparseMemory::new())
    }

    fn scfg() -> SampleConfig {
        SampleConfig::default()
            .with_interval(5_000)
            .with_warmup(2_000)
            .with_period(25_000)
            .with_max_instructions(200_000)
    }

    #[test]
    fn sampled_run_measures_every_period() {
        let (prog, mem) = strided_loop();
        let run = run_sampled(
            &prog,
            &mem,
            CoreConfig::default(),
            HierarchyConfig::default(),
            &scfg(),
            || Box::new(NullEngine),
        )
        .unwrap();
        assert_eq!(run.report.interval_count(), 8);
        assert!(run.report.ipc_mean > 0.0);
        assert!(run.report.ipc_ci95.is_finite());
        assert_eq!(
            run.report.detailed_instructions
                + run.report.warmup_instructions
                + run.report.ffwd_instructions,
            run.report.total_retired
        );
        assert!(run.report.ffwd_instructions > run.report.detailed_instructions);
    }

    #[test]
    fn sampled_run_is_deterministic() {
        let (prog, mem) = strided_loop();
        let go = || {
            run_sampled(
                &prog,
                &mem,
                CoreConfig::default(),
                HierarchyConfig::default(),
                &scfg(),
                || Box::new(NullEngine),
            )
            .unwrap()
        };
        let a = go();
        let b = go();
        assert_eq!(a.report, b.report);
        assert_eq!(a.core.cycles, b.core.cycles);
        assert_eq!(a.measured_mshr_integral, b.measured_mshr_integral);
    }

    #[test]
    fn emitted_checkpoints_roundtrip_and_match_the_sequential_run() {
        let (prog, mem) = strided_loop();
        let cfg = scfg();
        let emit = emit_checkpoints(&prog, &mem, HierarchyConfig::default(), &cfg).unwrap();
        assert_eq!(emit.checkpoints.len(), 8);

        // Measuring from byte-roundtripped checkpoints, in reverse order,
        // merges to the same run as the sequential driver.
        let mut periods: Vec<PeriodResult> = emit
            .checkpoints
            .iter()
            .rev()
            .map(|ck| {
                let bytes = ck.to_bytes();
                let back = PeriodCheckpoint::from_bytes(&bytes).expect("checkpoint parses");
                assert_eq!(back.to_bytes(), bytes);
                measure_period(
                    &prog,
                    &mem,
                    CoreConfig::default(),
                    HierarchyConfig::default(),
                    &cfg,
                    &back,
                    || Box::new(NullEngine),
                )
                .unwrap()
            })
            .collect();
        periods.reverse();
        let merged = merge_periods(periods, emit.total_retired, emit.halted);

        let reference = run_sampled(
            &prog,
            &mem,
            CoreConfig::default(),
            HierarchyConfig::default(),
            &cfg,
            || Box::new(NullEngine),
        )
        .unwrap();
        assert_eq!(merged.report, reference.report);
        assert_eq!(merged.core.to_flat(), reference.core.to_flat());
        assert_eq!(merged.mem.to_flat(), reference.mem.to_flat());
        assert_eq!(merged.measured_mshr_integral, reference.measured_mshr_integral);
        assert_eq!(merged.halted, reference.halted);
    }

    #[test]
    fn random_placement_stays_within_periods() {
        let (prog, mem) = strided_loop();
        let cfg = scfg().with_placement(Placement::Random).with_seed(7);
        let run = run_sampled(
            &prog,
            &mem,
            CoreConfig::default(),
            HierarchyConfig::default(),
            &cfg,
            || Box::new(NullEngine),
        )
        .unwrap();
        assert!(run.report.interval_count() >= 7);
        for (k, s) in run.report.intervals.iter().enumerate() {
            assert!(s.start_retired >= k as u64 * cfg.period + cfg.warmup);
            assert!(s.start_retired < (k as u64 + 1) * cfg.period);
        }
    }

    #[test]
    fn short_program_halts_cleanly() {
        let mut asm = Asm::new();
        asm.li(Reg::R1, 10);
        let top = asm.here();
        asm.addi(Reg::R1, Reg::R1, -1);
        asm.bnz(Reg::R1, top);
        asm.halt();
        let prog = asm.finish().unwrap();
        let run = run_sampled(
            &prog,
            &SparseMemory::new(),
            CoreConfig::default(),
            HierarchyConfig::default(),
            &SampleConfig::default()
                .with_interval(10)
                .with_warmup(0)
                .with_period(20)
                .with_max_instructions(1_000),
            || Box::new(NullEngine),
        )
        .unwrap();
        assert!(run.halted);
        assert!(run.report.total_retired < 1_000);
    }

    #[test]
    fn invalid_config_is_reported() {
        let (prog, mem) = strided_loop();
        let err = run_sampled(
            &prog,
            &mem,
            CoreConfig::default(),
            HierarchyConfig::default(),
            &SampleConfig::default().with_interval(0),
            || Box::new(NullEngine),
        )
        .unwrap_err();
        assert!(matches!(err, SampleError::Config(_)));
    }

    #[test]
    fn corrupt_checkpoint_reports_a_checkpoint_error() {
        let (prog, mem) = strided_loop();
        let cfg = scfg();
        let emit = emit_checkpoints(&prog, &mem, HierarchyConfig::default(), &cfg).unwrap();
        let mut ck = emit.checkpoints[0].clone();
        ck.warm_bp.truncate(4);
        let err = measure_period(
            &prog,
            &mem,
            CoreConfig::default(),
            HierarchyConfig::default(),
            &cfg,
            &ck,
            || Box::new(NullEngine),
        )
        .unwrap_err();
        assert!(matches!(err, SampleError::Checkpoint(_)));
    }
}
