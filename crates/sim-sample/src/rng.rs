//! A tiny deterministic PRNG for interval placement.

/// SplitMix64: a fast, well-distributed 64-bit generator. Used only for
/// seeded interval placement — every sampled run with the same seed places
/// intervals identically, which keeps sampled runs byte-identical across
/// thread counts and hosts.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift reduction; bias is negligible for our bounds
        // (placement offsets far below 2^32) and determinism is what counts.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_bounded() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            let x = a.next_below(1000);
            assert_eq!(x, b.next_below(1000));
            assert!(x < 1000);
        }
        assert_ne!(SplitMix64::new(1).next_u64(), SplitMix64::new(2).next_u64());
    }

    #[test]
    fn zero_bound_is_zero() {
        assert_eq!(SplitMix64::new(3).next_below(0), 0);
    }
}
