//! The sample-worker wire protocol: one [`PeriodResult`] per JSON line.
//!
//! A worker process measures one period and prints exactly one line of
//! JSON on stdout; the orchestrator parses it back and merges. The
//! protocol carries **integers only** — every derived float (IPC, MLP,
//! the report aggregates) is recomputed at merge time from the counters
//! — so a result that crosses the wire is bit-exactly the result that
//! would have been produced in-process.
//!
//! The format is fixed-order and machine-generated on both ends, so the
//! parser is deliberately strict: field order, spelling, and shape must
//! match [`PeriodResult::to_json`] exactly, and any deviation (including
//! trailing garbage) parses to `None` rather than a guess.

use sim_mem::MemStats;
use sim_ooo::CoreStats;

use crate::driver::PeriodResult;

/// Current version of the worker line protocol (the leading `"v"` field).
pub const WIRE_VERSION: u64 = 1;

fn put_array(out: &mut String, vals: &[u64]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&v.to_string());
    }
    out.push(']');
}

impl PeriodResult {
    /// Serializes to one line of fixed-order integer JSON (no trailing
    /// newline).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "{{\"v\":{},\"period\":{},\"start_retired\":{},\"warmup_committed\":{},\
             \"mshr_integral\":{},\"measured\":{},\"core\":",
            WIRE_VERSION,
            self.index,
            self.start_retired,
            self.warmup_committed,
            self.mshr_integral,
            u64::from(self.measured),
        ));
        put_array(&mut s, &self.core.to_flat());
        s.push_str(",\"mem\":");
        put_array(&mut s, &self.mem.to_flat());
        s.push('}');
        s
    }

    /// Parses a [`PeriodResult::to_json`] line (surrounding ASCII
    /// whitespace tolerated). Returns `None` on any deviation from the
    /// fixed format: wrong version, reordered or missing fields, non-0/1
    /// `measured`, wrong array lengths, or trailing bytes.
    pub fn from_json(s: &str) -> Option<PeriodResult> {
        let mut p = Parser { b: s.trim().as_bytes(), i: 0 };
        p.lit("{\"v\":")?;
        if p.u64()? != WIRE_VERSION {
            return None;
        }
        p.lit(",\"period\":")?;
        let index = p.u64()?;
        p.lit(",\"start_retired\":")?;
        let start_retired = p.u64()?;
        p.lit(",\"warmup_committed\":")?;
        let warmup_committed = p.u64()?;
        p.lit(",\"mshr_integral\":")?;
        let mshr_integral = p.u64()?;
        p.lit(",\"measured\":")?;
        let measured = match p.u64()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        p.lit(",\"core\":")?;
        let core = CoreStats::from_flat(&p.array(CoreStats::FLAT_LEN)?)?;
        p.lit(",\"mem\":")?;
        let mem = MemStats::from_flat(&p.array(MemStats::FLAT_LEN)?)?;
        p.lit("}")?;
        if p.i != p.b.len() {
            return None;
        }
        Some(PeriodResult {
            index,
            start_retired,
            warmup_committed,
            mshr_integral,
            measured,
            core,
            mem,
        })
    }
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn lit(&mut self, s: &str) -> Option<()> {
        if self.b[self.i..].starts_with(s.as_bytes()) {
            self.i += s.len();
            Some(())
        } else {
            None
        }
    }

    fn u64(&mut self) -> Option<u64> {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i].is_ascii_digit() {
            self.i += 1;
        }
        if self.i == start {
            return None;
        }
        std::str::from_utf8(&self.b[start..self.i]).ok()?.parse().ok()
    }

    fn array(&mut self, len: usize) -> Option<Vec<u64>> {
        self.lit("[")?;
        let mut v = Vec::with_capacity(len);
        for i in 0..len {
            if i > 0 {
                self.lit(",")?;
            }
            v.push(self.u64()?);
        }
        self.lit("]")?;
        Some(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_result() -> PeriodResult {
        let core =
            CoreStats { cycles: 4_321, committed: 5_000, loads: 1_234, ..Default::default() };
        let mem = MemStats {
            demand_loads: 1_234,
            demand_hits: [900, 200, 100, 34],
            dram_writebacks: 7,
            ..Default::default()
        };
        PeriodResult {
            index: 5,
            start_retired: 127_455,
            warmup_committed: 2_000,
            mshr_integral: 9_876,
            measured: true,
            core,
            mem,
        }
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let r = sample_result();
        let line = r.to_json();
        assert!(!line.contains('\n'));
        let back = PeriodResult::from_json(&line).expect("line parses");
        assert_eq!(back, r);
        assert_eq!(back.to_json(), line);
        // Surrounding whitespace (a worker's trailing newline) is fine.
        assert_eq!(PeriodResult::from_json(&format!("{line}\n")).unwrap(), r);
    }

    #[test]
    fn unmeasured_period_roundtrips() {
        let r = PeriodResult {
            index: 9,
            start_retired: 0,
            warmup_committed: 123,
            mshr_integral: 0,
            measured: false,
            core: CoreStats::default(),
            mem: MemStats::default(),
        };
        assert_eq!(PeriodResult::from_json(&r.to_json()).unwrap(), r);
    }

    #[test]
    fn malformed_lines_are_rejected() {
        let line = sample_result().to_json();
        assert!(PeriodResult::from_json(&line[1..]).is_none(), "truncated front");
        assert!(PeriodResult::from_json(&line[..line.len() - 1]).is_none(), "truncated back");
        assert!(PeriodResult::from_json(&format!("{line}x")).is_none(), "trailing garbage");
        assert!(
            PeriodResult::from_json(&line.replace("\"v\":1", "\"v\":2")).is_none(),
            "unknown version"
        );
        assert!(
            PeriodResult::from_json(&line.replace("\"measured\":1", "\"measured\":3")).is_none(),
            "bad measured flag"
        );
        assert!(PeriodResult::from_json("").is_none());
    }
}
