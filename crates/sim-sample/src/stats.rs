//! Per-interval samples and their statistical aggregation.

/// Measurements from one detailed interval.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct IntervalStat {
    /// Retired-instruction position at which measurement began.
    pub start_retired: u64,
    /// Instructions committed by the detailed core during measurement.
    pub committed: u64,
    /// Cycles the measured interval took.
    pub cycles: u64,
    /// Interval IPC (`committed / cycles`).
    pub ipc: f64,
    /// Interval MLP (MSHR-occupancy integral delta per cycle).
    pub mlp: f64,
}

/// Two-sided 97.5% Student-t quantile for `df` degrees of freedom (i.e.
/// the multiplier for a 95% confidence interval). Falls back to the normal
/// approximation 1.96 above 30 degrees of freedom.
pub fn student_t_975(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::INFINITY,
        1..=30 => TABLE[df - 1],
        _ => 1.96,
    }
}

/// The statistical result of a sampled run: per-interval samples plus
/// their aggregation into a mean IPC with a 95% confidence interval.
///
/// The CI treats interval IPCs as independent draws from the program's
/// IPC distribution (the SMARTS assumption): half-width
/// `t_{0.975,n-1} * sqrt(variance / n)`. With fewer than two intervals the
/// variance is undefined and the half-width reports infinity — configure
/// the run for at least two periods.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SampledReport {
    /// The per-interval samples, in measurement order.
    pub intervals: Vec<IntervalStat>,
    /// Mean of per-interval IPCs.
    pub ipc_mean: f64,
    /// Unbiased sample variance of per-interval IPCs.
    pub ipc_variance: f64,
    /// Half-width of the 95% confidence interval on the mean IPC.
    pub ipc_ci95: f64,
    /// Mean of per-interval MLPs.
    pub mlp_mean: f64,
    /// Instructions committed inside measured intervals.
    pub detailed_instructions: u64,
    /// Instructions committed inside discarded detailed warmups.
    pub warmup_instructions: u64,
    /// Instructions covered by functional fast-forward (including any
    /// frontier overshoot of detailed intervals).
    pub ffwd_instructions: u64,
    /// Total instructions retired across the whole run.
    pub total_retired: u64,
    /// Cycles spent inside measured intervals.
    pub detailed_cycles: u64,
}

impl SampledReport {
    /// Aggregates interval samples into the summary statistics.
    pub fn from_intervals(
        intervals: Vec<IntervalStat>,
        warmup_instructions: u64,
        total_retired: u64,
    ) -> Self {
        let n = intervals.len();
        let detailed_instructions: u64 = intervals.iter().map(|s| s.committed).sum();
        let detailed_cycles: u64 = intervals.iter().map(|s| s.cycles).sum();
        let ffwd_instructions =
            total_retired.saturating_sub(detailed_instructions + warmup_instructions);
        let (ipc_mean, ipc_variance, mlp_mean) = if n == 0 {
            (0.0, 0.0, 0.0)
        } else {
            let mean = intervals.iter().map(|s| s.ipc).sum::<f64>() / n as f64;
            let mlp = intervals.iter().map(|s| s.mlp).sum::<f64>() / n as f64;
            let var = if n < 2 {
                0.0
            } else {
                intervals.iter().map(|s| (s.ipc - mean).powi(2)).sum::<f64>() / (n - 1) as f64
            };
            (mean, var, mlp)
        };
        let ipc_ci95 = if n < 2 {
            f64::INFINITY
        } else {
            student_t_975(n - 1) * (ipc_variance / n as f64).sqrt()
        };
        SampledReport {
            intervals,
            ipc_mean,
            ipc_variance,
            ipc_ci95,
            mlp_mean,
            detailed_instructions,
            warmup_instructions,
            ffwd_instructions,
            total_retired,
            detailed_cycles,
        }
    }

    /// Number of measured intervals.
    pub fn interval_count(&self) -> usize {
        self.intervals.len()
    }

    /// Whether the 95% confidence interval contains `ipc`.
    pub fn ci_contains(&self, ipc: f64) -> bool {
        (ipc - self.ipc_mean).abs() <= self.ipc_ci95
    }

    /// Signed relative error of the sampled mean against an exact IPC.
    pub fn relative_error(&self, exact_ipc: f64) -> f64 {
        if exact_ipc == 0.0 {
            0.0
        } else {
            (self.ipc_mean - exact_ipc) / exact_ipc
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(ipc: f64) -> IntervalStat {
        IntervalStat {
            start_retired: 0,
            committed: 1000,
            cycles: (1000.0 / ipc) as u64,
            ipc,
            mlp: 2.0,
        }
    }

    #[test]
    fn t_table_endpoints() {
        assert_eq!(student_t_975(0), f64::INFINITY);
        assert!((student_t_975(1) - 12.706).abs() < 1e-9);
        assert!((student_t_975(30) - 2.042).abs() < 1e-9);
        assert!((student_t_975(31) - 1.96).abs() < 1e-9);
    }

    #[test]
    fn aggregation_matches_closed_form() {
        let r = SampledReport::from_intervals(
            vec![sample(1.0), sample(2.0), sample(3.0)],
            500,
            100_000,
        );
        assert!((r.ipc_mean - 2.0).abs() < 1e-12);
        assert!((r.ipc_variance - 1.0).abs() < 1e-12);
        // t_{0.975,2} * sqrt(1/3)
        assert!((r.ipc_ci95 - 4.303 * (1.0f64 / 3.0).sqrt()).abs() < 1e-9);
        assert_eq!(r.detailed_instructions, 3000);
        assert_eq!(r.warmup_instructions, 500);
        assert_eq!(r.ffwd_instructions, 100_000 - 3500);
        assert!(r.ci_contains(2.5));
        assert!(!r.ci_contains(4.5));
        assert!((r.relative_error(2.5) + 0.2).abs() < 1e-12);
    }

    #[test]
    fn single_interval_has_unbounded_ci() {
        let r = SampledReport::from_intervals(vec![sample(1.5)], 0, 10_000);
        assert_eq!(r.ipc_ci95, f64::INFINITY);
        assert!(r.ci_contains(100.0));
    }

    #[test]
    fn empty_report_is_safe() {
        let r = SampledReport::from_intervals(vec![], 0, 0);
        assert_eq!(r.ipc_mean, 0.0);
        assert_eq!(r.interval_count(), 0);
        assert_eq!(r.relative_error(0.0), 0.0);
    }
}
