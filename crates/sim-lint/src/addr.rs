//! Symbolic affine address analysis.
//!
//! Classifies every load and store by how its effective address evolves
//! across iterations of its innermost natural loop:
//!
//! * [`AddrClass::Affine`] — the address moves by a fixed stride per
//!   iteration (stride 0 = loop-invariant). These are the loads DVR's
//!   stride detector locks on.
//! * [`AddrClass::PointerChase`] — the address is data-dependent on a value
//!   loaded inside the loop; `depth` is the number of loads on the longest
//!   static chain feeding the address. These are the dependent loads
//!   Discovery's Vector Taint Tracker gathers.
//! * [`AddrClass::Irregular`] — the address depends on a non-affine,
//!   non-load recurrence (e.g. `i*i`); neither striding nor chaseable.
//!
//! The per-loop value lattice is
//! `Top > Affine{delta} > LoadDerived{depth} > Unknown`, updated
//! monotonically, so the fixed point always terminates;
//! chase depths saturate at [`MAX_CHASE_DEPTH`] so self-recurrent chains
//! (`p = *p`) converge too. On top of the same machinery, a value-range
//! walk of the cmp+branch latch idiom recovers static loop trip counts.

use sim_isa::{AluOp, BranchCond, Instr, Reg, NUM_REGS};

use crate::absint::{AbsInt, Interval};
use crate::cfg::Cfg;
use crate::dfg::{const_of_defs, const_use, DefSet, DefUseGraph};
use crate::loops::LoopInfo;

/// Chase depths saturate here; a reported depth of `MAX_CHASE_DEPTH` means
/// "at least this deep" (typically a loop-carried `p = *p` recurrence).
pub const MAX_CHASE_DEPTH: usize = 8;

/// How a memory access's address evolves across iterations of its
/// innermost loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AddrClass {
    /// Address advances by `stride` bytes per iteration (0 = invariant).
    Affine {
        /// Per-iteration address delta in bytes.
        stride: i64,
    },
    /// Address depends on a value loaded inside the loop; `depth` counts
    /// the loads on the longest chain feeding the address (1 = classic
    /// `a[b[i]]`, saturating at [`MAX_CHASE_DEPTH`]).
    PointerChase {
        /// Static dependent-load chain depth.
        depth: usize,
    },
    /// Address depends on a non-affine, non-load value.
    Irregular,
}

impl std::fmt::Display for AddrClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddrClass::Affine { stride } => write!(f, "affine{stride:+}"),
            AddrClass::PointerChase { depth } => write!(f, "chase(d{depth})"),
            AddrClass::Irregular => write!(f, "irregular"),
        }
    }
}

/// One classified load or store.
#[derive(Clone, Debug)]
pub struct MemOp {
    /// Program counter of the access.
    pub pc: usize,
    /// Whether this is a store.
    pub is_store: bool,
    /// Access width in bytes.
    pub width: u64,
    /// Index into the analysis's loop slice of the innermost loop
    /// containing the access, or `None` outside any loop.
    pub loop_idx: Option<usize>,
    /// The address classification (relative to the innermost loop;
    /// `Affine {stride: 0}` outside loops).
    pub class: AddrClass,
    /// Resolved constant value of the base register, when provable — with
    /// the workload `Layout` convention this names the memory region the
    /// access stays in.
    pub region_base: Option<u64>,
}

/// Per-loop results of the address pass.
#[derive(Clone, Debug)]
pub struct LoopAddr {
    /// Basic induction variables: registers whose single in-loop definition
    /// is `r = r ± imm`, with the per-iteration step.
    pub ivs: Vec<(Reg, i64)>,
    /// Statically inferred trip count (body executions per entry), when the
    /// cmp+branch idiom resolves against a constant bound.
    pub trip_count: Option<u64>,
    /// Inclusive `[lo, hi]` bounds on the trip count. Always present when
    /// `trip_count` is (as `(t, t)`); additionally inferred from the
    /// interval abstract interpretation when the exact walk gives up
    /// because the bound or initial value is only known as a range.
    pub trip_bounds: Option<(u64, u64)>,
}

/// Result of [`analyze_addresses`].
pub struct AddrAnalysis {
    /// Every load and store, ascending by pc.
    pub mem_ops: Vec<MemOp>,
    /// Per-loop info, parallel to the `loops` slice passed in.
    pub loop_addr: Vec<LoopAddr>,
    /// Constant-propagation results per defining pc (re-exported so later
    /// passes share one computation).
    pub known: Vec<Option<u64>>,
}

impl AddrAnalysis {
    /// The classified access at `pc`, if it is a load or store.
    pub fn mem_op_at(&self, pc: usize) -> Option<&MemOp> {
        self.mem_ops.iter().find(|m| m.pc == pc)
    }
}

/// Per-loop value class of a definition site.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ValClass {
    /// Not yet computed.
    Top,
    /// Changes by `delta` per iteration (0 = loop-invariant).
    Affine(i64),
    /// Data-dependent on an in-loop load; `depth` = loads on the chain so
    /// far (a root load's value has depth 0).
    LoadDerived(usize),
    /// None of the above.
    Unknown,
}

fn meet(a: ValClass, b: ValClass) -> ValClass {
    use ValClass::*;
    match (a, b) {
        (Top, x) | (x, Top) => x,
        (Unknown, _) | (_, Unknown) => Unknown,
        (Affine(d1), Affine(d2)) => {
            if d1 == d2 {
                Affine(d1)
            } else {
                Unknown
            }
        }
        (LoadDerived(k1), LoadDerived(k2)) => LoadDerived(k1.max(k2).min(MAX_CHASE_DEPTH)),
        (Affine(_), LoadDerived(k)) | (LoadDerived(k), Affine(_)) => LoadDerived(k),
    }
}

/// Everything one loop's classification pass needs to share.
struct LoopCtx<'a> {
    instrs: &'a [Instr],
    dfg: &'a DefUseGraph,
    known: &'a [Option<u64>],
    /// pc -> in this loop's body.
    in_loop: Vec<bool>,
    ivs: Vec<(Reg, i64)>,
    /// Per-pc value class of the definition at that pc (in-loop defs only).
    class: Vec<ValClass>,
}

impl LoopCtx<'_> {
    fn iv_step(&self, reg: Reg) -> Option<i64> {
        self.ivs.iter().find(|(r, _)| *r == reg).map(|&(_, s)| s)
    }

    /// The per-iteration class of the value read from `reg` at `pc`.
    fn use_class(&self, pc: usize, reg: Reg) -> ValClass {
        if let Some(step) = self.iv_step(reg) {
            return ValClass::Affine(step);
        }
        let Some(defs) = self.dfg.defs_for_use(pc, reg) else {
            return ValClass::Unknown;
        };
        self.defs_class(defs)
    }

    fn defs_class(&self, defs: &DefSet) -> ValClass {
        let in_defs: Vec<usize> = defs.pcs.iter().copied().filter(|&d| self.in_loop[d]).collect();
        let has_out = defs.entry || defs.pcs.iter().any(|&d| !self.in_loop[d]);
        if in_defs.is_empty() {
            // Only definitions from outside the loop reach: the value never
            // changes while the loop runs.
            return ValClass::Affine(0);
        }
        let inner = in_defs.iter().fold(ValClass::Top, |acc, &d| meet(acc, self.class[d]));
        if !has_out {
            return inner;
        }
        // Loop-carried recurrence that is not a basic IV. When the in-loop
        // side is a load chain this is a pointer chase (`p = *p`: the entry
        // definition is just the chain head); anything else is beyond the
        // affine model.
        match inner {
            ValClass::LoadDerived(k) => ValClass::LoadDerived(k),
            ValClass::Top => ValClass::Top,
            _ => ValClass::Unknown,
        }
    }

    /// Constant value of the read of `reg` at `pc`, if provable.
    fn use_const(&self, pc: usize, reg: Reg) -> Option<u64> {
        const_use(self.dfg, self.known, pc, reg)
    }

    fn transfer(&self, pc: usize) -> ValClass {
        use ValClass::*;
        match self.instrs[pc] {
            Instr::Imm { .. } => Affine(0),
            Instr::Load { addr, .. } => match self.addr_class_at(pc, &addr) {
                AddrClass::PointerChase { depth } => LoadDerived(depth.min(MAX_CHASE_DEPTH)),
                _ => LoadDerived(0),
            },
            Instr::Alu { op, ra, rb, .. } => {
                let ca = self.use_class(pc, ra);
                let cb = self.use_class(pc, rb);
                self.alu_class(op, ca, cb, self.use_const(pc, ra), self.use_const(pc, rb))
            }
            Instr::AluImm { op, ra, imm, .. } => {
                let ca = self.use_class(pc, ra);
                self.alu_class(op, ca, Affine(0), self.use_const(pc, ra), Some(imm as u64))
            }
            // Branches/stores/halt define nothing; treat defensively.
            _ => Unknown,
        }
    }

    fn alu_class(
        &self,
        op: AluOp,
        ca: ValClass,
        cb: ValClass,
        va: Option<u64>,
        vb: Option<u64>,
    ) -> ValClass {
        use ValClass::*;
        match (ca, cb) {
            (Top, _) | (_, Top) => return Top,
            (Unknown, _) | (_, Unknown) => return Unknown,
            (LoadDerived(k1), LoadDerived(k2)) => return LoadDerived(k1.max(k2)),
            // Arithmetic on a loaded value keeps the data dependence (this
            // mirrors Discovery's taint propagation bit-for-bit).
            (LoadDerived(k), _) | (_, LoadDerived(k)) => return LoadDerived(k),
            (Affine(_), Affine(_)) => {}
        }
        let (da, db) = match (ca, cb) {
            (Affine(da), Affine(db)) => (da, db),
            _ => unreachable!("non-affine handled above"),
        };
        match op {
            AluOp::Add => Affine(da.wrapping_add(db)),
            AluOp::Sub => Affine(da.wrapping_sub(db)),
            AluOp::Shl if db == 0 => match (da, vb) {
                (0, _) => Affine(0),
                (_, Some(c)) if c < 63 => Affine(da.wrapping_shl(c as u32)),
                _ => Unknown,
            },
            AluOp::Mul => match (da, db, va, vb) {
                (0, 0, _, _) => Affine(0),
                (_, 0, _, Some(c)) => Affine(da.wrapping_mul(c as i64)),
                (0, _, Some(c), _) => Affine(db.wrapping_mul(c as i64)),
                _ => Unknown,
            },
            // Everything else preserves invariance but not affinity.
            _ if da == 0 && db == 0 => Affine(0),
            _ => Unknown,
        }
    }

    /// Address class of the access at `pc` given the current value classes.
    fn addr_class_at(&self, pc: usize, addr: &sim_isa::MemAddr) -> AddrClass {
        let base = self.use_class(pc, addr.base);
        let (index, scale) = match addr.index {
            Some(ix) => (self.use_class(pc, ix), addr.scale),
            None => (ValClass::Affine(0), 0),
        };
        use ValClass::*;
        match (base, index) {
            (Top, _) | (_, Top) => AddrClass::Irregular, // resolves next round
            (Unknown, _) | (_, Unknown) => AddrClass::Irregular,
            (LoadDerived(k1), LoadDerived(k2)) => {
                AddrClass::PointerChase { depth: (k1.max(k2) + 1).min(MAX_CHASE_DEPTH) }
            }
            (LoadDerived(k), Affine(_)) | (Affine(_), LoadDerived(k)) => {
                AddrClass::PointerChase { depth: (k + 1).min(MAX_CHASE_DEPTH) }
            }
            (Affine(db), Affine(di)) => {
                AddrClass::Affine { stride: db.wrapping_add(di.wrapping_shl(scale as u32)) }
            }
        }
    }
}

/// Whether `pc` falls inside the body of `l`.
pub(crate) fn pc_in_loop(cfg: &Cfg, l: &LoopInfo, pc: usize) -> bool {
    l.body.contains(&cfg.block_of(pc))
}

fn body_pc_count(cfg: &Cfg, l: &LoopInfo) -> usize {
    l.body.iter().map(|&b| cfg.blocks[b].end - cfg.blocks[b].start).sum()
}

/// Index into `loops` of the innermost loop containing `pc`.
pub(crate) fn innermost_loop(cfg: &Cfg, loops: &[LoopInfo], pc: usize) -> Option<usize> {
    loops
        .iter()
        .enumerate()
        .filter(|(_, l)| pc_in_loop(cfg, l, pc))
        .min_by_key(|(_, l)| body_pc_count(cfg, l))
        .map(|(i, _)| i)
}

fn collect_ivs(cfg: &Cfg, instrs: &[Instr], l: &LoopInfo) -> Vec<(Reg, i64)> {
    let mut defs = [0usize; NUM_REGS];
    let pcs: Vec<usize> =
        l.body.iter().flat_map(|&b| cfg.blocks[b].start..cfg.blocks[b].end).collect();
    for &pc in &pcs {
        if let Some(rd) = instrs[pc].dst() {
            defs[rd.index()] += 1;
        }
    }
    let mut ivs = Vec::new();
    for &pc in &pcs {
        if let Instr::AluImm { op, rd, ra, imm } = instrs[pc] {
            let step = match op {
                AluOp::Add => imm,
                AluOp::Sub => -imm,
                _ => continue,
            };
            if rd == ra && defs[rd.index()] == 1 {
                ivs.push((rd, step));
            }
        }
    }
    ivs
}

/// Runs the address pass: per-loop value classification, per-access
/// [`AddrClass`], and trip-count inference. `loops` must come from
/// [`crate::find_loops`] on the same CFG.
pub fn analyze_addresses(
    cfg: &Cfg,
    instrs: &[Instr],
    dfg: &DefUseGraph,
    loops: &[LoopInfo],
) -> AddrAnalysis {
    analyze_addresses_with(cfg, instrs, dfg, loops, None)
}

/// [`analyze_addresses`] with an optional interval analysis
/// ([`crate::analyze_intervals`]) over the same program. When supplied,
/// loops whose exact trip count is unprovable may still get
/// [`LoopAddr::trip_bounds`] from the corner values of the IV-initial and
/// bound intervals.
pub fn analyze_addresses_with(
    cfg: &Cfg,
    instrs: &[Instr],
    dfg: &DefUseGraph,
    loops: &[LoopInfo],
    intervals: Option<&AbsInt>,
) -> AddrAnalysis {
    let known = crate::dfg::known_constants(instrs, dfg);

    // Classify per loop, innermost-first is irrelevant: each access is
    // classified against its own innermost loop only.
    let mut per_loop_ctx: Vec<LoopCtx> = loops
        .iter()
        .map(|l| {
            let mut in_loop = vec![false; instrs.len()];
            for &b in &l.body {
                in_loop[cfg.blocks[b].start..cfg.blocks[b].end].fill(true);
            }
            LoopCtx {
                instrs,
                dfg,
                known: &known,
                in_loop,
                ivs: collect_ivs(cfg, instrs, l),
                class: vec![ValClass::Top; instrs.len()],
            }
        })
        .collect();

    for ctx in &mut per_loop_ctx {
        // Monotone fixed point; the lattice height bounds the rounds but we
        // cap defensively anyway.
        let max_rounds = 4 * (MAX_CHASE_DEPTH + 2) + instrs.len();
        for _ in 0..max_rounds {
            let mut changed = false;
            for (pc, ins) in instrs.iter().enumerate() {
                if !ctx.in_loop[pc] || ins.dst().is_none() {
                    continue;
                }
                let next = ctx.transfer(pc);
                let merged = meet(ctx.class[pc], next);
                if merged != ctx.class[pc] {
                    ctx.class[pc] = merged;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Anything still Top after the fixed point is unreachable or
        // blocked on an unreachable cycle; resolve pessimistically.
        for c in &mut ctx.class {
            if *c == ValClass::Top {
                *c = ValClass::Unknown;
            }
        }
    }

    // Classify every access against its innermost loop.
    let mut mem_ops = Vec::new();
    for (pc, instr) in instrs.iter().enumerate() {
        let (addr, width, is_store) = match *instr {
            Instr::Load { addr, width, .. } => (addr, width.bytes(), false),
            Instr::Store { addr, width, .. } => (addr, width.bytes(), true),
            _ => continue,
        };
        let loop_idx = innermost_loop(cfg, loops, pc);
        let class = match loop_idx {
            Some(li) => per_loop_ctx[li].addr_class_at(pc, &addr),
            None => AddrClass::Affine { stride: 0 },
        };
        let region_base = const_use(dfg, &known, pc, addr.base);
        mem_ops.push(MemOp { pc, is_store, width, loop_idx, class, region_base });
    }

    let loop_addr: Vec<LoopAddr> = loops
        .iter()
        .zip(&per_loop_ctx)
        .map(|(l, ctx)| {
            let trip_count = trip_count(cfg, instrs, dfg, &known, l, &ctx.ivs);
            let trip_bounds = match trip_count {
                Some(t) => Some((t, t)),
                None => intervals.and_then(|ai| trip_bounds(cfg, instrs, dfg, l, &ctx.ivs, ai)),
            };
            LoopAddr { ivs: ctx.ivs.clone(), trip_count, trip_bounds }
        })
        .collect();

    AddrAnalysis { mem_ops, loop_addr, known }
}

/// The matched `cmp` + backward-branch latch idiom, shared between the
/// exact trip-count walk and the interval trip-bounds walk.
struct LatchIdiom {
    op: AluOp,
    cond: BranchCond,
    cmp_pc: usize,
    iv_reg: Reg,
    step: i64,
    iv_is_lhs: bool,
    /// The non-IV compare operand: `Ok(reg)` for a register, `Err(imm)`
    /// for an immediate bound.
    bound: Result<Reg, u64>,
    /// The IV's single in-loop definition (first body pc defining it).
    iv_def_pc: usize,
    /// Increments executed before the k-th compare: 1 per completed
    /// iteration, plus this iteration's if the increment precedes the cmp.
    pre: i64,
}

fn match_latch_idiom(
    cfg: &Cfg,
    instrs: &[Instr],
    l: &LoopInfo,
    ivs: &[(Reg, i64)],
) -> Option<LatchIdiom> {
    let cmp_pc = l.cmp_pc?;
    let Instr::Branch { cond, target, .. } = instrs[l.latch_pc] else {
        return None;
    };
    if target != l.head_pc {
        return None;
    }

    // The compare: one side the IV, the other the loop bound.
    let (op, iv, iv_is_lhs, bound) = match instrs[cmp_pc] {
        Instr::Alu { op, ra, rb, .. } if op.is_compare() => {
            let a_iv = ivs.iter().find(|(r, _)| *r == ra);
            let b_iv = ivs.iter().find(|(r, _)| *r == rb);
            match (a_iv, b_iv) {
                (Some(&iv), None) => (op, iv, true, Ok(rb)),
                (None, Some(&iv)) => (op, iv, false, Ok(ra)),
                _ => return None,
            }
        }
        Instr::AluImm { op, ra, imm, .. } if op.is_compare() => {
            let iv = *ivs.iter().find(|(r, _)| *r == ra)?;
            (op, iv, true, Err(imm as u64))
        }
        _ => return None,
    };
    let (iv_reg, step) = iv;
    if step == 0 {
        return None;
    }
    let iv_def_pc = l
        .body
        .iter()
        .flat_map(|&b| cfg.blocks[b].start..cfg.blocks[b].end)
        .find(|&pc| instrs[pc].dst() == Some(iv_reg))?;
    let pre = i64::from(iv_def_pc < cmp_pc);
    Some(LatchIdiom { op, cond, cmp_pc, iv_reg, step, iv_is_lhs, bound, iv_def_pc, pre })
}

/// The IV's value the `k`-th time the compare executes, computed without
/// wrapping: `None` when the exact affine progression leaves the signed
/// 64-bit range. The executor would wrap there, and a walk through a wrap
/// proves nothing about when the loop exits.
fn iv_value_at(init: i64, step: i64, pre: i64, k: u64) -> Option<u64> {
    let hops = (k as i128) - 1 + i128::from(pre);
    let v = i128::from(init).checked_add(i128::from(step).checked_mul(hops)?)?;
    i64::try_from(v).ok().map(|x| x as u64)
}

/// Binary-searches the first failing compare of an `slt`/`sltu` latch for
/// concrete initial and bound values. With the progression confined to the
/// signed range the signed continue predicate is monotone in `k`, so a
/// single true→false switch point exists. `nonneg` further confines every
/// probed value to `[0, 2^63)`, where the signed and unsigned orders
/// agree — required for `sltu` (whose unsigned view is not monotone across
/// a sign change) and for the interval walk's corner argument.
fn count_lt(idiom: &LatchIdiom, init: i64, bound: u64, nonneg: bool) -> Option<u64> {
    let continues = |k: u64| -> Option<bool> {
        let v = iv_value_at(init, idiom.step, idiom.pre, k)?;
        if nonneg && (v as i64) < 0 {
            return None;
        }
        let (x, y) = if idiom.iv_is_lhs { (v, bound) } else { (bound, v) };
        Some(idiom.cond.taken(idiom.op.eval(x, y)))
    };
    if !continues(1)? {
        return Some(1);
    }
    let (mut lo, mut hi) = (1u64, 1u64 << 42);
    if continues(hi)? {
        return None;
    }
    while lo + 1 < hi {
        let mid = lo + (hi - lo) / 2;
        if continues(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

/// Infers the loop's trip count (body executions per entry from the
/// preheader) from the cmp + backward-branch idiom against a constant
/// bound, mirroring the executor's compare semantics exactly.
fn trip_count(
    cfg: &Cfg,
    instrs: &[Instr],
    dfg: &DefUseGraph,
    known: &[Option<u64>],
    l: &LoopInfo,
    ivs: &[(Reg, i64)],
) -> Option<u64> {
    let idiom = match_latch_idiom(cfg, instrs, l, ivs)?;
    let bound = match idiom.bound {
        Ok(reg) => const_use(dfg, known, idiom.cmp_pc, reg)?,
        Err(imm) => imm,
    };

    // IV initial value: the out-of-loop definitions reaching the IV's
    // single in-loop definition.
    let defs = dfg.defs_for_use(idiom.iv_def_pc, idiom.iv_reg)?;
    let outside = DefSet {
        pcs: defs.pcs.iter().copied().filter(|&d| !pc_in_loop(cfg, l, d)).collect(),
        entry: defs.entry,
    };
    let init = const_of_defs(&outside, known)? as i64;

    match idiom.op {
        AluOp::Slt | AluOp::Sltu => count_lt(&idiom, init, bound, idiom.op == AluOp::Sltu),
        AluOp::Sne => {
            // Continue while v != bound: exits only when the IV lands
            // exactly on the bound. 128-bit exact division, so a countdown
            // whose delta wraps the signed range cannot panic
            // (`i64::MIN % -1`) or fabricate a count.
            let first = iv_value_at(init, idiom.step, idiom.pre, 1)?;
            let delta = i128::from(bound as i64) - i128::from(first as i64);
            let step = i128::from(idiom.step);
            if delta % step != 0 {
                return None;
            }
            u64::try_from(delta / step).ok()?.checked_add(1)
        }
        _ => None,
    }
}

/// Interval generalization of [`trip_count`]: inclusive `[lo, hi]` trip
/// bounds when the IV's initial value or the loop bound is only known as a
/// range. Only the `slt`/`sltu` walk generalizes: with every probed value
/// confined to `[0, 2^63)` the trip count is monotone in both the initial
/// value and the bound, so its extremes over the two intervals are
/// attained at the four corners.
fn trip_bounds(
    cfg: &Cfg,
    instrs: &[Instr],
    dfg: &DefUseGraph,
    l: &LoopInfo,
    ivs: &[(Reg, i64)],
    ai: &AbsInt,
) -> Option<(u64, u64)> {
    let idiom = match_latch_idiom(cfg, instrs, l, ivs)?;
    if !matches!(idiom.op, AluOp::Slt | AluOp::Sltu) {
        return None;
    }
    let bound_iv = match idiom.bound {
        Ok(reg) => ai.reg_before(idiom.cmp_pc, reg)?,
        Err(imm) => Interval::exact(imm),
    };

    // IV initial interval: join of the out-of-loop definitions reaching
    // the IV's single in-loop definition (the entry contributes exactly
    // 0); interval-unreachable definitions contribute nothing.
    let defs = dfg.defs_for_use(idiom.iv_def_pc, idiom.iv_reg)?;
    let mut init_iv: Option<Interval> = defs.entry.then(|| Interval::exact(0));
    for &d in defs.pcs.iter().filter(|&&d| !pc_in_loop(cfg, l, d)) {
        if let Some(dv) = ai.def_interval(d) {
            init_iv = Some(match init_iv {
                Some(acc) => acc.join(dv),
                None => dv,
            });
        }
    }
    let init_iv = init_iv?;
    if !init_iv.signed_nonneg() || !bound_iv.signed_nonneg() {
        return None;
    }

    let (mut lo, mut hi) = (u64::MAX, 0u64);
    for init in [init_iv.lo, init_iv.hi] {
        for bound in [bound_iv.lo, bound_iv.hi] {
            let t = count_lt(&idiom, init as i64, bound, true)?;
            lo = lo.min(t);
            hi = hi.max(t);
        }
    }
    Some((lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loops::find_loops;
    use sim_isa::parse_program;

    fn analyze(text: &str) -> (AddrAnalysis, Vec<LoopInfo>) {
        let p = parse_program(text).unwrap();
        let instrs = p.instrs().to_vec();
        let cfg = Cfg::build(&instrs);
        let dfg = DefUseGraph::build(&cfg, &instrs);
        let loops = find_loops(&cfg, &instrs);
        (analyze_addresses(&cfg, &instrs, &dfg, &loops), loops)
    }

    #[test]
    fn striding_load_is_affine() {
        let (a, _) = analyze(
            "li r1, 4096\nli r2, 0\nli r3, 8\ntop:\nld8 r5, [r1 + r2<<3 + 0]\n\
             addi r2, r2, 1\nslt r6, r2, r3\nbnz r6, top\nhalt",
        );
        let m = a.mem_op_at(3).unwrap();
        assert_eq!(m.class, AddrClass::Affine { stride: 8 });
        assert_eq!(m.region_base, Some(4096));
        assert_eq!(a.loop_addr[0].trip_count, Some(8));
    }

    #[test]
    fn indirect_load_is_chase_depth_one() {
        let (a, _) = analyze(
            "li r1, 4096\nli r2, 8192\nli r3, 0\nli r4, 100\ntop:\n\
             ld8 r5, [r1 + r3<<3 + 0]\nld8 r6, [r2 + r5<<3 + 0]\n\
             addi r3, r3, 1\nslt r7, r3, r4\nbnz r7, top\nhalt",
        );
        assert_eq!(a.mem_op_at(4).unwrap().class, AddrClass::Affine { stride: 8 });
        assert_eq!(a.mem_op_at(5).unwrap().class, AddrClass::PointerChase { depth: 1 });
        assert_eq!(a.mem_op_at(5).unwrap().region_base, Some(8192));
        assert_eq!(a.loop_addr[0].trip_count, Some(100));
    }

    #[test]
    fn two_level_chase_is_depth_two() {
        let (a, _) = analyze(
            "li r1, 4096\nli r2, 8192\nli r8, 12288\nli r3, 0\nli r4, 100\ntop:\n\
             ld8 r5, [r1 + r3<<3 + 0]\nld8 r6, [r2 + r5<<3 + 0]\nld8 r7, [r8 + r6<<3 + 0]\n\
             addi r3, r3, 1\nslt r7, r3, r4\nbnz r7, top\nhalt",
        );
        assert_eq!(a.mem_op_at(7).unwrap().class, AddrClass::PointerChase { depth: 2 });
    }

    #[test]
    fn self_chase_saturates() {
        // while (p) p = *p — loop-carried load recurrence.
        let (a, _) = analyze("li r1, 4096\ntop:\nld8 r1, [r1 + 0]\nbnz r1, top\nhalt");
        match a.mem_op_at(1).unwrap().class {
            AddrClass::PointerChase { depth } => assert_eq!(depth, MAX_CHASE_DEPTH),
            c => panic!("expected chase, got {c:?}"),
        }
    }

    #[test]
    fn derived_iv_through_shift_is_affine() {
        // addr = base + (i << 3) computed in a separate register.
        let (a, _) = analyze(
            "li r1, 4096\nli r2, 0\nli r3, 16\ntop:\nshli r4, r2, 3\nadd r5, r1, r4\n\
             ld8 r6, [r5 + 0]\naddi r2, r2, 1\nslt r7, r2, r3\nbnz r7, top\nhalt",
        );
        assert_eq!(a.mem_op_at(5).unwrap().class, AddrClass::Affine { stride: 8 });
    }

    #[test]
    fn iv_squared_is_irregular() {
        let (a, _) = analyze(
            "li r1, 4096\nli r2, 0\nli r3, 16\ntop:\nmul r4, r2, r2\n\
             ld8 r6, [r1 + r4<<3 + 0]\naddi r2, r2, 1\nslt r7, r2, r3\nbnz r7, top\nhalt",
        );
        assert_eq!(a.mem_op_at(4).unwrap().class, AddrClass::Irregular);
    }

    #[test]
    fn store_through_chase_value_is_chase() {
        let (a, _) = analyze(
            "li r1, 4096\nli r2, 8192\nli r3, 0\nli r4, 100\ntop:\n\
             ld8 r5, [r1 + r3<<3 + 0]\nst8 r3, [r2 + r5<<3 + 0]\n\
             addi r3, r3, 1\nslt r7, r3, r4\nbnz r7, top\nhalt",
        );
        let st = a.mem_op_at(5).unwrap();
        assert!(st.is_store);
        assert_eq!(st.class, AddrClass::PointerChase { depth: 1 });
    }

    #[test]
    fn countdown_loop_trip_count() {
        // for (i = 10; i != 0; i--)
        let (a, _) = analyze(
            "li r1, 10\nli r2, 0\ntop:\naddi r1, r1, -1\nsne r3, r1, r2\nbnz r3, top\nhalt",
        );
        assert_eq!(a.loop_addr[0].trip_count, Some(10));
        assert_eq!(a.loop_addr[0].trip_bounds, Some((10, 10)));
    }

    #[test]
    fn wrapping_countdown_cannot_panic_or_fabricate_a_count() {
        // An sne countdown whose first-value-to-bound delta is exactly
        // i64::MIN: the old wrapping walk evaluated `i64::MIN % -1` and
        // panicked. The checked walk reports "unknown" instead.
        let (a, _) = analyze(
            "li r1, -9223372036854775807\nli r2, 0\ntop:\naddi r1, r1, -1\n\
             sne r3, r1, r2\nbnz r3, top\nhalt",
        );
        assert_eq!(a.loop_addr[0].trip_count, None);
        assert_eq!(a.loop_addr[0].trip_bounds, None);
    }

    #[test]
    fn interval_bound_yields_trip_bounds() {
        // The loop bound is loaded from a read-only region at an address
        // only known as a range, so the exact walk fails; the interval
        // walk brackets the trip count from the region's content bounds.
        let text = ".region data 0x1000 16\n\
             li r1, 4096\nli r6, 8192\nld8 r5, [r6 + 0]\nandi r5, r5, 1\n\
             ld8 r4, [r1 + r5<<3 + 0]\nli r2, 0\ntop:\n\
             addi r2, r2, 1\nslt r3, r2, r4\nbnz r3, top\nhalt";
        let p = parse_program(text).unwrap();
        let mut mem = sim_isa::SparseMemory::new();
        mem.write_u64(4096, 5);
        mem.write_u64(4104, 9);
        let instrs = p.instrs().to_vec();
        let cfg = Cfg::build(&instrs);
        let dfg = DefUseGraph::build(&cfg, &instrs);
        let loops = find_loops(&cfg, &instrs);
        let ai = crate::absint::analyze_intervals(&p, Some(&mem));
        let a = analyze_addresses_with(&cfg, &instrs, &dfg, &loops, Some(&ai));
        assert_eq!(a.loop_addr[0].trip_count, None);
        assert_eq!(a.loop_addr[0].trip_bounds, Some((5, 9)));
    }

    #[test]
    fn outside_loop_access_is_invariant() {
        let (a, _) = analyze("li r1, 4096\nld8 r2, [r1 + 0]\nhalt");
        let m = a.mem_op_at(1).unwrap();
        assert_eq!(m.loop_idx, None);
        assert_eq!(m.class, AddrClass::Affine { stride: 0 });
    }
}
