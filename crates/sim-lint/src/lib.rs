//! # sim-lint — static analysis of `sim-isa` programs
//!
//! Lifts an assembled [`Program`] into a control-flow graph, runs dominator
//! and reaching-definitions dataflow over it, and reports typed
//! [`Diagnostic`]s:
//!
//! * **uninit-read** (warning) — a register read before any write on some
//!   path; well-defined (registers are architecturally zero) but usually a
//!   workload bug.
//! * **unreachable-block** (warning) — dead code no entry path reaches.
//! * **bad-branch-target** (error) — a branch/jump past the end of the
//!   program (`target == len` is the ISA's legal fall-off halt).
//! * **infinite-loop** (error) — a loop with no exit edge; the message
//!   notes whether the loop at least makes memory progress.
//!
//! On top of the CFG, a **Discovery-Mode conformance pass**
//! ([`find_loops`]) classifies every natural loop the way DVR's Discovery
//! Mode would see it — striding induction vs. none, cmp+branch loop-bound
//! idiom vs. irregular control, striding and dependent load chains — to
//! statically predict which loops vector runahead can cover
//! ([`LoopClass`]).
//!
//! ## Example
//!
//! ```
//! let prog = sim_isa::parse_program(
//!     "li r1, 4096
//!      li r2, 0
//!      li r3, 8
//!      li r4, 0
//!  top:
//!      ld8 r5, [r1 + r2<<3 + 0]
//!      add r4, r4, r5
//!      addi r2, r2, 1
//!      slt r6, r2, r3
//!      bnz r6, top
//!      halt",
//! )?;
//! let report = sim_lint::analyze(&prog);
//! assert!(report.is_clean());
//! assert_eq!(report.loops.len(), 1);
//! assert_eq!(report.loops[0].class, sim_lint::LoopClass::VectorizableStride);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod absint;
mod addr;
mod bounds;
mod cfg;
mod dataflow;
mod deps;
mod dfg;
mod diag;
mod loops;
mod predict;
mod taint;

use sim_isa::{Instr, Program, Reg};

pub use absint::{
    addr_interval_in, alu_interval, analyze_intervals, AbsInt, Interval, RegIntervals,
};
pub use addr::{
    analyze_addresses, analyze_addresses_with, AddrAnalysis, AddrClass, LoopAddr, MemOp,
    MAX_CHASE_DEPTH,
};
pub use bounds::{
    check_bounds, BoundsDiagnostic, BoundsKind, BoundsReport, BoundsVerdict, MemOpBounds,
};
pub use cfg::{Block, Cfg};
pub use dataflow::{dominators, may_uninit, reachable, BlockSet, UninitAnalysis};
pub use deps::{analyze_deps, dependents_of, refine_rmw, AliasEdge, AliasReason, LoopDeps};
pub use dfg::{const_of_defs, const_use, known_constants, DefSet, DefUseGraph, UseSite};
pub use diag::{Diagnostic, LintKind, LintReport, Severity};
pub use loops::{find_loops, LoopClass, LoopInfo};
pub use predict::{
    predict_coverage, CoveragePrediction, PredictedChain, SkipReason, DETECTOR_SLOTS,
    MIN_TRIPS_TO_SPAWN,
};
pub use taint::{analyze_taint, LeakDiagnostic, LeakKind, TaintReport};

/// Analyzes a program and returns every diagnostic plus the loop
/// classification. Equivalent to [`analyze_instrs`] on `prog.instrs()`.
pub fn analyze(prog: &Program) -> LintReport {
    analyze_instrs(prog.instrs())
}

/// Analyzes a raw instruction sequence (useful for testing programs that
/// the assembler and parser would reject, e.g. out-of-range targets).
pub fn analyze_instrs(instrs: &[Instr]) -> LintReport {
    let cfg = Cfg::build(instrs);
    let mut diags = Vec::new();

    // Malformed control targets: `target > len` can never execute (the
    // parser rejects these too; this covers programs built in memory).
    for (pc, instr) in instrs.iter().enumerate() {
        if let Some(t) = instr.target() {
            if t > instrs.len() {
                diags.push(Diagnostic::new(
                    LintKind::BadBranchTarget,
                    pc,
                    format!("branch target {t} is past the end of the program ({})", instrs.len()),
                ));
            }
        }
    }

    // Unreachable blocks, reported once at the block's first pc.
    let reach = reachable(&cfg);
    for (bi, block) in cfg.blocks.iter().enumerate() {
        if !reach.contains(bi) {
            diags.push(Diagnostic::new(
                LintKind::UnreachableBlock,
                block.start,
                format!("block at pc {}..{} is unreachable from the entry", block.start, block.end),
            ));
        }
    }

    // May-uninitialized register reads.
    let uninit = may_uninit(&cfg, instrs);
    for &(pc, reg) in &uninit.reads {
        let r = Reg::from_index(reg).expect("analysis yields valid register indices");
        diags.push(Diagnostic::new(
            LintKind::UninitRead,
            pc,
            format!("{r} may be read before its first write (registers reset to 0)"),
        ));
    }

    // Loop extraction + inescapable-loop detection.
    let loops = find_loops(&cfg, instrs);
    for l in &loops {
        if !l.has_exit {
            let progress = if l.stores == 0 {
                " and makes no memory progress"
            } else {
                " (it stores, but can still never halt)"
            };
            diags.push(Diagnostic::new(
                LintKind::InfiniteLoop,
                l.head_pc,
                format!("loop at pc {} has no exit path{progress}", l.head_pc),
            ));
        }
    }

    diags.sort_by_key(|d| (d.pc, d.kind));
    LintReport { diags, loops }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::parse_program;

    #[test]
    fn clean_program_is_clean() {
        let p = parse_program(
            "li r1, 4096\nli r2, 0\nli r3, 8\nli r4, 0\ntop:\n\
             ld8 r5, [r1 + r2<<3 + 0]\nadd r4, r4, r5\naddi r2, r2, 1\n\
             slt r6, r2, r3\nbnz r6, top\nhalt",
        )
        .unwrap();
        let r = analyze(&p);
        assert!(r.is_clean());
        assert_eq!(r.warnings(), 0);
        assert_eq!(r.loops.len(), 1);
    }

    #[test]
    fn uninit_read_is_a_warning_with_source_line() {
        let p = parse_program("add r3, r1, r2\nhalt").unwrap();
        let r = analyze(&p);
        assert!(r.is_clean()); // warnings don't fail the lint
        assert_eq!(r.warnings(), 2);
        assert_eq!(r.diags[0].kind, LintKind::UninitRead);
        let rendered = r.diags[0].render(Some(&p));
        assert!(rendered.contains("warning[uninit-read]"), "{rendered}");
        assert!(rendered.contains("line 1"), "{rendered}");
    }

    #[test]
    fn dead_loop_is_an_error() {
        let p = parse_program("top:\njmp top\nhalt").unwrap();
        let r = analyze(&p);
        assert_eq!(r.errors(), 1);
        let d = r.diags.iter().find(|d| d.kind == LintKind::InfiniteLoop).unwrap();
        assert!(d.message.contains("no memory progress"));
        // The halt after the loop is dead code.
        assert!(r.diags.iter().any(|d| d.kind == LintKind::UnreachableBlock));
    }

    #[test]
    fn bad_target_is_an_error() {
        // The parser rejects targets > len, so build the program in memory.
        let instrs = vec![Instr::Jump { target: 99 }, Instr::Halt];
        let r = analyze_instrs(&instrs);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.diags[0].kind, LintKind::BadBranchTarget);
        assert_eq!(r.diags[0].pc, 0);
    }

    #[test]
    fn empty_program_is_clean() {
        let r = analyze_instrs(&[]);
        assert!(r.is_clean());
        assert!(r.loops.is_empty());
    }
}
