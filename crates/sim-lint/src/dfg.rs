//! Reaching-definitions def-use graph ("SSA-lite") and sparse constant
//! propagation.
//!
//! Every use site is linked to the set of definitions that may reach it —
//! including the *virtual entry definition* (registers are architecturally
//! zero at program start). Because no register is ever renamed the graph is
//! not true SSA, but every query the address-flow and dependence passes
//! need (which defs feed this operand? which uses does this def feed?) is
//! answered precisely per the CFG, which is all SSA would buy on programs
//! this small.

use sim_isa::{Instr, Reg, NUM_REGS};

use crate::cfg::Cfg;

/// The set of definition sites of one register reaching one program point.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct DefSet {
    /// Defining pcs, ascending, deduplicated.
    pub pcs: Vec<usize>,
    /// Whether the architectural zero from program entry also reaches.
    pub entry: bool,
}

impl DefSet {
    /// True when no definition (not even the entry zero) reaches — only
    /// possible at unreachable program points.
    pub fn is_empty(&self) -> bool {
        self.pcs.is_empty() && !self.entry
    }
}

/// Dense bitset over `len + 1` definition sites; bit `len` is the virtual
/// entry definition.
#[derive(Clone, PartialEq, Eq)]
struct PcSet {
    words: Vec<u64>,
}

impl PcSet {
    fn empty(len: usize) -> Self {
        PcSet { words: vec![0; (len + 1).div_ceil(64)] }
    }

    fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1 << (i % 64);
    }

    fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    fn union(&mut self, other: &PcSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words
            .iter()
            .enumerate()
            .flat_map(|(wi, &w)| (0..64).filter(move |b| w >> b & 1 != 0).map(move |b| wi * 64 + b))
    }

    fn to_def_set(&self, len: usize) -> DefSet {
        let mut pcs = Vec::new();
        let mut entry = false;
        for i in self.iter() {
            if i == len {
                entry = true;
            } else {
                pcs.push(i);
            }
        }
        DefSet { pcs, entry }
    }
}

/// One operand read: which register, and which definitions may feed it.
#[derive(Clone, Debug)]
pub struct UseSite {
    /// The register read.
    pub reg: Reg,
    /// The definitions that may reach this read.
    pub defs: DefSet,
}

/// Reaching-definitions def-use graph over a [`Cfg`].
pub struct DefUseGraph {
    len: usize,
    /// Per pc: one [`UseSite`] per distinct source register, in the order
    /// [`Instr::srcs`] first yields them.
    uses: Vec<Vec<UseSite>>,
    /// Per block, per register: definitions reaching the block entry.
    block_entry: Vec<Vec<DefSet>>,
    /// Per defining pc: the use pcs its value may feed.
    def_uses: Vec<Vec<usize>>,
}

impl DefUseGraph {
    /// Builds the graph with a classic forward union reaching-definitions
    /// fixed point (per-register def-site bitsets, worklist over blocks).
    pub fn build(cfg: &Cfg, instrs: &[Instr]) -> DefUseGraph {
        let len = instrs.len();
        let nb = cfg.len();
        let mut ins: Vec<Vec<PcSet>> =
            (0..nb).map(|_| (0..NUM_REGS).map(|_| PcSet::empty(len)).collect()).collect();
        if nb == 0 {
            return DefUseGraph {
                len,
                uses: Vec::new(),
                block_entry: Vec::new(),
                def_uses: Vec::new(),
            };
        }
        // The virtual entry definition of every register reaches block 0.
        for set in &mut ins[0] {
            set.insert(len);
        }

        // Block transfer: the last in-block def of a register kills
        // everything incoming; otherwise the block is transparent.
        let last_def = |b: usize, r: usize| -> Option<usize> {
            let block = &cfg.blocks[b];
            (block.start..block.end).rev().find(|&pc| instrs[pc].dst().map(Reg::index) == Some(r))
        };

        let mut work: Vec<usize> = (0..nb).collect();
        let mut out: Vec<PcSet> = (0..NUM_REGS).map(|_| PcSet::empty(len)).collect();
        while let Some(b) = work.pop() {
            for (r, (o, i)) in out.iter_mut().zip(&ins[b]).enumerate() {
                o.clear();
                match last_def(b, r) {
                    Some(pc) => o.insert(pc),
                    None => {
                        o.union(i);
                    }
                }
            }
            for &s in &cfg.blocks[b].succs {
                let mut grew = false;
                for (i, o) in ins[s].iter_mut().zip(&out) {
                    grew |= i.union(o);
                }
                if grew && !work.contains(&s) {
                    work.push(s);
                }
            }
        }

        // Walk each block once more to attach per-use def sets.
        let mut uses: Vec<Vec<UseSite>> = vec![Vec::new(); len];
        let mut def_uses: Vec<Vec<usize>> = vec![Vec::new(); len];
        for (block, block_ins) in cfg.blocks.iter().zip(&ins) {
            let mut cur: Vec<PcSet> = block_ins.clone();
            for pc in block.start..block.end {
                let mut seen: u16 = 0;
                for src in instrs[pc].srcs() {
                    if seen & src.bit() != 0 {
                        continue;
                    }
                    seen |= src.bit();
                    let defs = cur[src.index()].to_def_set(len);
                    for &d in &defs.pcs {
                        def_uses[d].push(pc);
                    }
                    uses[pc].push(UseSite { reg: src, defs });
                }
                if let Some(rd) = instrs[pc].dst() {
                    cur[rd.index()].clear();
                    cur[rd.index()].insert(pc);
                }
            }
        }
        for u in &mut def_uses {
            u.sort_unstable();
            u.dedup();
        }
        let block_entry =
            ins.into_iter().map(|regs| regs.iter().map(|s| s.to_def_set(len)).collect()).collect();

        DefUseGraph { len, uses, block_entry, def_uses }
    }

    /// The definitions reaching the read of `reg` at `pc`, or `None` when
    /// the instruction does not read `reg`.
    pub fn defs_for_use(&self, pc: usize, reg: Reg) -> Option<&DefSet> {
        self.uses[pc].iter().find(|u| u.reg == reg).map(|u| &u.defs)
    }

    /// Every operand read at `pc` with its reaching definitions.
    pub fn uses_at(&self, pc: usize) -> &[UseSite] {
        &self.uses[pc]
    }

    /// The definitions of `reg` reaching the entry of `block`.
    pub fn defs_at_block_entry(&self, block: usize, reg: Reg) -> &DefSet {
        &self.block_entry[block][reg.index()]
    }

    /// The use pcs the definition at `def_pc` may feed.
    pub fn uses_of_def(&self, def_pc: usize) -> &[usize] {
        &self.def_uses[def_pc]
    }

    /// Number of instructions the graph was built over.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the program was empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Sparse conditional-free constant propagation over the def-use graph.
///
/// `result[pc]` is `Some(v)` when the value written by the definition at
/// `pc` is provably `v` on every execution. The virtual entry definition is
/// the constant 0 (registers are architecturally zeroed). The fixed point
/// is pessimistic — a cell becomes `Some` only once all operand definitions
/// have resolved to one equal constant, so each cell is written at most
/// once and termination is immediate.
pub fn known_constants(instrs: &[Instr], dfg: &DefUseGraph) -> Vec<Option<u64>> {
    let mut known: Vec<Option<u64>> = vec![None; instrs.len()];
    loop {
        let mut changed = false;
        for (pc, instr) in instrs.iter().enumerate() {
            if known[pc].is_some() || instr.dst().is_none() {
                continue;
            }
            let value = match *instr {
                Instr::Imm { value, .. } => Some(value as u64),
                Instr::Alu { op, ra, rb, .. } => {
                    match (const_use(dfg, &known, pc, ra), const_use(dfg, &known, pc, rb)) {
                        (Some(a), Some(b)) => Some(op.eval(a, b)),
                        _ => None,
                    }
                }
                Instr::AluImm { op, ra, imm, .. } => {
                    const_use(dfg, &known, pc, ra).map(|a| op.eval(a, imm as u64))
                }
                // Loads (and everything else producing a value from memory)
                // are never constant to this pass.
                _ => None,
            };
            if value.is_some() {
                known[pc] = value;
                changed = true;
            }
        }
        if !changed {
            return known;
        }
    }
}

/// The constant value of the read of `reg` at `pc`, when every reaching
/// definition agrees on one.
pub fn const_use(dfg: &DefUseGraph, known: &[Option<u64>], pc: usize, reg: Reg) -> Option<u64> {
    let defs = dfg.defs_for_use(pc, reg)?;
    const_of_defs(defs, known)
}

/// The constant value shared by every definition in `defs`, if any.
pub fn const_of_defs(defs: &DefSet, known: &[Option<u64>]) -> Option<u64> {
    let mut value: Option<u64> = defs.entry.then_some(0);
    for &d in &defs.pcs {
        match (known[d], value) {
            (Some(v), None) => value = Some(v),
            (Some(v), Some(prev)) if v == prev => {}
            _ => return None,
        }
    }
    if defs.is_empty() {
        return None;
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::parse_program;

    fn build(text: &str) -> (Cfg, Vec<Instr>, DefUseGraph) {
        let p = parse_program(text).unwrap();
        let instrs = p.instrs().to_vec();
        let cfg = Cfg::build(&instrs);
        let dfg = DefUseGraph::build(&cfg, &instrs);
        (cfg, instrs, dfg)
    }

    #[test]
    fn straight_line_links_use_to_def() {
        let (_, _, dfg) = build("li r1, 5\nadd r2, r1, r1\nhalt");
        let defs = dfg.defs_for_use(1, Reg::R1).unwrap();
        assert_eq!(defs.pcs, vec![0]);
        assert!(!defs.entry);
        assert_eq!(dfg.uses_of_def(0), &[1]);
    }

    #[test]
    fn entry_zero_reaches_unwritten_reads() {
        let (_, _, dfg) = build("add r2, r1, r1\nhalt");
        let defs = dfg.defs_for_use(0, Reg::R1).unwrap();
        assert!(defs.entry);
        assert!(defs.pcs.is_empty());
    }

    #[test]
    fn loop_carried_def_reaches_use_at_head() {
        // r1 at the addi reads both the li (entry path) and itself (loop
        // path).
        let (_, _, dfg) = build("li r1, 3\ntop:\naddi r1, r1, -1\nbnz r1, top\nhalt");
        let defs = dfg.defs_for_use(1, Reg::R1).unwrap();
        assert_eq!(defs.pcs, vec![0, 1]);
        assert!(!defs.entry);
    }

    #[test]
    fn diamond_joins_both_defs() {
        let (_, _, dfg) = build("bnz r1, @3\nli r2, 1\njmp @4\nli r2, 2\nadd r3, r2, r2\nhalt");
        let defs = dfg.defs_for_use(4, Reg::R2).unwrap();
        assert_eq!(defs.pcs, vec![1, 3]);
        assert!(!defs.entry);
    }

    #[test]
    fn constants_fold_through_alu() {
        let (_, instrs, dfg) = build("li r1, 6\nshli r2, r1, 3\nadd r3, r2, r1\nhalt");
        let known = known_constants(&instrs, &dfg);
        assert_eq!(known[0], Some(6));
        assert_eq!(known[1], Some(48));
        assert_eq!(known[2], Some(54));
    }

    #[test]
    fn loop_carried_value_is_not_constant() {
        let (_, instrs, dfg) = build("li r1, 3\ntop:\naddi r1, r1, -1\nbnz r1, top\nhalt");
        let known = known_constants(&instrs, &dfg);
        assert_eq!(known[0], Some(3));
        assert_eq!(known[1], None);
    }

    #[test]
    fn entry_zero_is_constant() {
        let (_, instrs, dfg) = build("addi r2, r1, 7\nhalt");
        let known = known_constants(&instrs, &dfg);
        assert_eq!(known[0], Some(7));
    }
}
