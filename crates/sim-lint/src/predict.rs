//! Static DVR coverage prediction.
//!
//! Combines the address classes, dependence chains, and trip counts into a
//! per-benchmark prediction of what Discovery Mode should do: which static
//! loads it will lock onto as striding triggers, which dependent chains it
//! will vectorize (and how deep they are), and which triggers it will *not*
//! spawn from, with a typed reason mirroring the dynamic engine's actual
//! decision logic (no dependent chain, innermost-switching, stride-detector
//! warm-up, detector slot conflicts). The `dvrsim audit` subcommand diffs
//! this prediction against the engine's event trace.

use sim_isa::Instr;

use crate::addr::{AddrAnalysis, AddrClass};
use crate::cfg::Cfg;
use crate::deps::{dependents_of, refine_rmw, AliasEdge, LoopDeps};
use crate::loops::LoopInfo;

/// The number of stride-detector slots the dynamic engine uses; triggers
/// whose pcs collide modulo this evict each other and never gain
/// confidence.
pub const DETECTOR_SLOTS: usize = 32;

/// Iterations a loop must run for the detector to reach confidence (three
/// equal strides after the first observation) and Discovery to follow one
/// full iteration and still have a future iteration left to prefetch.
pub const MIN_TRIPS_TO_SPAWN: u64 = 6;

/// Why a statically striding load with (or without) a chain is predicted
/// *not* to spawn a vector-runahead subthread.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SkipReason {
    /// No load's address depends on this trigger's value: Discovery
    /// finishes with an empty Final-Load Register and records
    /// `no_dependent_chain`.
    NoDependentLoads,
    /// A nested inner loop contains its own striding load; Discovery's
    /// innermost-striding-load check switches to it before the outer
    /// trigger comes around.
    ShadowedByInner {
        /// The inner striding load that wins the switch.
        inner_stride_pc: usize,
    },
    /// The loop's static trip count is below the detector-warmup +
    /// discovery-iteration minimum ([`MIN_TRIPS_TO_SPAWN`]).
    TooFewIterations {
        /// The inferred trip count.
        trips: u64,
    },
    /// Another striding load in the same loop nest maps to the same
    /// direct-mapped detector slot; the two evict each other every
    /// observation and neither reaches confidence.
    DetectorSlotConflict {
        /// The conflicting load.
        with_pc: usize,
    },
}

impl std::fmt::Display for SkipReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SkipReason::NoDependentLoads => f.write_str("no-dependent-loads"),
            SkipReason::ShadowedByInner { inner_stride_pc } => {
                write!(f, "shadowed-by-inner@{inner_stride_pc}")
            }
            SkipReason::TooFewIterations { trips } => write!(f, "too-few-iterations({trips})"),
            SkipReason::DetectorSlotConflict { with_pc } => {
                write!(f, "detector-slot-conflict@{with_pc}")
            }
        }
    }
}

/// One statically predicted Discovery chain, rooted at a striding load.
#[derive(Clone, Debug)]
pub struct PredictedChain {
    /// Index of the root's innermost loop in the `loops` slice.
    pub loop_idx: usize,
    /// Head pc of that loop.
    pub loop_head: usize,
    /// The striding (root) load.
    pub stride_pc: usize,
    /// Its static per-iteration stride in bytes.
    pub stride: i64,
    /// Dependent loads `(pc, depth)` the Vector Taint Tracker should find,
    /// depth 1 = addressed directly off the root's value.
    pub dependents: Vec<(usize, usize)>,
    /// Longest dependent depth (0 when `dependents` is empty).
    pub chain_depth: usize,
    /// Static trip count of the loop, when inferred.
    pub trip_count: Option<u64>,
    /// Inclusive `[lo, hi]` trip bounds — `(t, t)` when the exact count is
    /// known, otherwise inferred from the interval analysis when the
    /// address pass was given one.
    pub trip_bounds: Option<(u64, u64)>,
    /// Store→load may-alias edges landing on this chain's loads.
    pub alias_edges: Vec<AliasEdge>,
    /// Whether Discovery is predicted to spawn a subthread off this root.
    pub expect_spawn: bool,
    /// When `expect_spawn` is false, why.
    pub skip: Option<SkipReason>,
}

/// The full static prediction for one program.
#[derive(Clone, Debug, Default)]
pub struct CoveragePrediction {
    /// Every striding-load root, ascending by `(loop_head, stride_pc)`.
    pub chains: Vec<PredictedChain>,
}

impl CoveragePrediction {
    /// Roots predicted to spawn.
    pub fn expected_spawns(&self) -> impl Iterator<Item = &PredictedChain> {
        self.chains.iter().filter(|c| c.expect_spawn)
    }

    /// The chain rooted at `stride_pc`, if predicted.
    pub fn chain_at(&self, stride_pc: usize) -> Option<&PredictedChain> {
        self.chains.iter().find(|c| c.stride_pc == stride_pc)
    }
}

/// Whether loop `inner`'s body is strictly contained in loop `outer`'s.
fn strictly_nested(outer: &LoopInfo, inner: &LoopInfo) -> bool {
    inner.body.len() < outer.body.len() && inner.body.iter().all(|b| outer.body.contains(b))
}

/// Builds the coverage prediction from the earlier passes' results.
pub fn predict_coverage(
    cfg: &Cfg,
    instrs: &[Instr],
    loops: &[LoopInfo],
    addr: &AddrAnalysis,
    deps: &[LoopDeps],
) -> CoveragePrediction {
    // Roots: loads whose address is affine with a non-zero stride relative
    // to their innermost loop — exactly what the dynamic stride detector
    // can become confident about.
    let roots: Vec<(usize, usize, i64)> = addr
        .mem_ops
        .iter()
        .filter(|m| !m.is_store)
        .filter_map(|m| match (m.loop_idx, m.class) {
            (Some(li), AddrClass::Affine { stride }) if stride != 0 => Some((m.pc, li, stride)),
            _ => None,
        })
        .collect();

    let mut chains = Vec::new();
    for &(pc, li, stride) in &roots {
        let l = &loops[li];
        let dependents = dependents_of(cfg, instrs, l, pc);
        let chain_depth = dependents.iter().map(|&(_, d)| d).max().unwrap_or(0);
        let trip_count = addr.loop_addr[li].trip_count;
        let trip_bounds = addr.loop_addr[li].trip_bounds;

        // Alias edges landing on this chain's loads (root included).
        let mut alias_edges: Vec<AliasEdge> = deps[li]
            .alias_edges
            .iter()
            .filter(|e| e.load_pc == pc || dependents.iter().any(|&(d, _)| d == e.load_pc))
            .cloned()
            .collect();
        for e in &mut alias_edges {
            refine_rmw(instrs, e);
        }

        // Skip analysis, in the order the dynamic engine's decisions fire:
        // a switch pre-empts the spawn decision, which pre-empts everything
        // the spawn would have done.
        let shadow = loops
            .iter()
            .enumerate()
            .filter(|(lj, inner)| *lj != li && strictly_nested(l, inner))
            .flat_map(|(lj, inner)| {
                // Inner striding loads only shadow if the inner loop can
                // iterate at least twice per invocation (the switch needs
                // the inner pc seen twice within one discovery pass).
                // Trip bounds subsume the exact count (`(t, t)`), so a
                // proven upper bound below 2 rules the switch out too.
                let runs_twice = addr.loop_addr[lj].trip_bounds.is_none_or(|(_, hi)| hi >= 2);
                roots
                    .iter()
                    .filter(move |&&(rpc, rli, _)| {
                        runs_twice && rli == lj && crate::addr::pc_in_loop(cfg, inner, rpc)
                    })
                    .map(|&(rpc, ..)| rpc)
            })
            .min();
        let conflict = roots
            .iter()
            .filter(|&&(opc, oli, _)| {
                opc != pc
                    && opc % DETECTOR_SLOTS == pc % DETECTOR_SLOTS
                    && (oli == li
                        || strictly_nested(&loops[oli], l)
                        || strictly_nested(l, &loops[oli]))
            })
            .map(|&(opc, ..)| opc)
            .min();

        let skip = if dependents.is_empty() {
            Some(SkipReason::NoDependentLoads)
        } else if let Some(inner_stride_pc) = shadow {
            Some(SkipReason::ShadowedByInner { inner_stride_pc })
        } else if let Some(with_pc) = conflict {
            Some(SkipReason::DetectorSlotConflict { with_pc })
        } else {
            // A proven upper trip bound below the minimum suffices even
            // when the exact count is unknown (`trips` reports the bound).
            trip_bounds
                .map(|(_, hi)| hi)
                .filter(|&t| t < MIN_TRIPS_TO_SPAWN)
                .map(|trips| SkipReason::TooFewIterations { trips })
        };

        chains.push(PredictedChain {
            loop_idx: li,
            loop_head: l.head_pc,
            stride_pc: pc,
            stride,
            dependents,
            chain_depth,
            trip_count,
            trip_bounds,
            alias_edges,
            expect_spawn: skip.is_none(),
            skip,
        });
    }
    chains.sort_by_key(|c| (c.loop_head, c.stride_pc));
    CoveragePrediction { chains }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::analyze_addresses;
    use crate::deps::analyze_deps;
    use crate::dfg::DefUseGraph;
    use crate::loops::find_loops;
    use sim_isa::parse_program;

    fn predict(text: &str) -> CoveragePrediction {
        let p = parse_program(text).unwrap();
        let instrs = p.instrs().to_vec();
        let cfg = Cfg::build(&instrs);
        let dfg = DefUseGraph::build(&cfg, &instrs);
        let loops = find_loops(&cfg, &instrs);
        let addr = analyze_addresses(&cfg, &instrs, &dfg, &loops);
        let deps = analyze_deps(&addr, &loops);
        predict_coverage(&cfg, &instrs, &loops, &addr, &deps)
    }

    #[test]
    fn chain_root_expects_spawn() {
        let p = predict(
            "li r1, 4096\nli r2, 8192\nli r3, 0\nli r4, 1000\ntop:\n\
             ld8 r5, [r1 + r3<<3 + 0]\nld8 r6, [r2 + r5<<3 + 0]\n\
             addi r3, r3, 1\nslt r7, r3, r4\nbnz r7, top\nhalt",
        );
        assert_eq!(p.chains.len(), 1);
        let c = &p.chains[0];
        assert_eq!(c.stride_pc, 4);
        assert!(c.expect_spawn);
        assert_eq!(c.dependents, vec![(5, 1)]);
        assert_eq!(c.chain_depth, 1);
        assert_eq!(c.trip_count, Some(1000));
    }

    #[test]
    fn bare_stride_skips_with_no_dependents() {
        let p = predict(
            "li r1, 4096\nli r3, 0\nli r4, 1000\ntop:\n\
             ld8 r5, [r1 + r3<<3 + 0]\nadd r6, r6, r5\n\
             addi r3, r3, 1\nslt r7, r3, r4\nbnz r7, top\nhalt",
        );
        assert_eq!(p.chains.len(), 1);
        assert_eq!(p.chains[0].skip, Some(SkipReason::NoDependentLoads));
        assert!(!p.chains[0].expect_spawn);
    }

    #[test]
    fn short_loop_skips_with_too_few_iterations() {
        let p = predict(
            "li r1, 4096\nli r2, 8192\nli r3, 0\nli r4, 3\ntop:\n\
             ld8 r5, [r1 + r3<<3 + 0]\nld8 r6, [r2 + r5<<3 + 0]\n\
             addi r3, r3, 1\nslt r7, r3, r4\nbnz r7, top\nhalt",
        );
        assert_eq!(p.chains[0].skip, Some(SkipReason::TooFewIterations { trips: 3 }));
    }

    #[test]
    fn outer_root_is_shadowed_by_inner() {
        // Outer loop strides A and chains through B; the inner loop strides
        // C with its own chain. The inner striding load wins the switch.
        let p = predict(
            "li r1, 4096\nli r2, 8192\nli r8, 12288\nli r9, 16384\nli r3, 0\nli r4, 100\n\
             outer:\nld8 r5, [r1 + r3<<3 + 0]\nld8 r6, [r2 + r5<<3 + 0]\nli r10, 0\n\
             inner:\nld8 r11, [r8 + r10<<3 + 0]\nld8 r12, [r9 + r11<<3 + 0]\n\
             addi r10, r10, 1\nslt r13, r10, r6\nbnz r13, inner\n\
             addi r3, r3, 1\nslt r7, r3, r4\nbnz r7, outer\nhalt",
        );
        let outer = p.chain_at(6).expect("outer root");
        let inner = p.chain_at(9).expect("inner root");
        assert!(inner.expect_spawn, "{inner:?}");
        assert_eq!(outer.skip, Some(SkipReason::ShadowedByInner { inner_stride_pc: 9 }));
    }
}
