//! Static bounds verification against declared `.region` footprints.
//!
//! Programs declare their legal memory footprint with the
//! `.region <name> <addr> <len>` directive (or
//! [`Asm::region`](sim_isa::Asm::region)); this pass asks, for every
//! reachable load and store, whether the interval analysis
//! ([`analyze_intervals`](crate::analyze_intervals)) can prove the access
//! stays inside one declared region:
//!
//! * **proven** — the address interval (widened by the access width) is
//!   contained in a single region; no diagnostic.
//! * **out-of-bounds-access** (error) — the interval is disjoint from
//!   *every* region: each execution of the instruction touches memory the
//!   workload never declared.
//! * **unproven-bounds** (warning) — the interval straddles a region
//!   boundary or is unbounded; the access *may* escape. Escalated to an
//!   error when the load belongs to a Discovery chain the coverage
//!   prediction expects to spawn, because VR/DVR will replay it dozens of
//!   lanes at a time under speculation — a statically unprovable gather is
//!   exactly the access pattern that drags speculative traffic outside the
//!   declared footprint (compare the gather-gadget escalation in
//!   [`analyze_taint`](crate::analyze_taint)).
//!
//! Programs that declare no regions produce an empty report: bounds
//! checking is opt-in per workload, so the pass stays silent rather than
//! flagging every access of an unannotated program.

use std::fmt;

use sim_isa::{Instr, Program, SparseMemory};

use crate::absint::{analyze_intervals, Interval};
use crate::addr::analyze_addresses_with;
use crate::cfg::Cfg;
use crate::deps::analyze_deps;
use crate::dfg::DefUseGraph;
use crate::diag::Severity;
use crate::loops::find_loops;
use crate::predict::predict_coverage;

/// The kind of finding a [`BoundsDiagnostic`] reports.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum BoundsKind {
    /// The access interval is disjoint from every declared region.
    OutOfBoundsAccess,
    /// The access interval cannot be proven inside one declared region.
    UnprovenBounds,
}

impl BoundsKind {
    /// Default severity (the unproven case may still be escalated, see
    /// [`BoundsDiagnostic::severity`]).
    pub fn severity(self) -> Severity {
        match self {
            BoundsKind::OutOfBoundsAccess => Severity::Error,
            BoundsKind::UnprovenBounds => Severity::Warning,
        }
    }

    /// Stable kebab-case name used in rendered diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            BoundsKind::OutOfBoundsAccess => "out-of-bounds-access",
            BoundsKind::UnprovenBounds => "unproven-bounds",
        }
    }
}

impl fmt::Display for BoundsKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One bounds finding, anchored to the offending memory instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BoundsDiagnostic {
    /// What kind of finding this is.
    pub kind: BoundsKind,
    /// [`BoundsKind::severity`], except `unproven-bounds` on a load of an
    /// expected-spawn Discovery chain, which is an error.
    pub severity: Severity,
    /// Program counter of the offending load or store.
    pub pc: usize,
    /// Human-readable description.
    pub message: String,
}

impl BoundsDiagnostic {
    /// Renders the diagnostic, pointing at the workload source line when
    /// the program was parsed from text.
    pub fn render(&self, prog: Option<&Program>) -> String {
        let loc = match prog.and_then(|p| p.source_line(self.pc)) {
            Some(line) => format!("pc {} (line {})", self.pc, line),
            None => format!("pc {}", self.pc),
        };
        format!("{}[{}] {}: {}", self.severity, self.kind.name(), loc, self.message)
    }
}

/// Per-memory-op verdict.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum BoundsVerdict {
    /// Provably inside the named region.
    Proven {
        /// Name of the containing region.
        region: String,
    },
    /// Provably outside every declared region.
    OutOfBounds,
    /// Neither provable: the interval straddles a boundary or is unbounded.
    Unproven,
}

impl fmt::Display for BoundsVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundsVerdict::Proven { region } => write!(f, "proven({region})"),
            BoundsVerdict::OutOfBounds => f.write_str("out-of-bounds"),
            BoundsVerdict::Unproven => f.write_str("unproven"),
        }
    }
}

/// The static claim for one reachable load or store.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MemOpBounds {
    /// Program counter of the access.
    pub pc: usize,
    /// `true` for loads, `false` for stores.
    pub is_load: bool,
    /// Access width in bytes.
    pub width: u64,
    /// Interval of the access's *start* address.
    pub addr: Interval,
    /// The verdict.
    pub verdict: BoundsVerdict,
    /// Whether the access is a load of a Discovery chain the coverage
    /// prediction expects to spawn (root or dependent).
    pub in_spawn_chain: bool,
}

/// Result of [`check_bounds`]: one [`MemOpBounds`] per reachable memory
/// instruction, plus the diagnostics for the unproven/out-of-bounds ones.
#[derive(Clone, Debug, Default)]
pub struct BoundsReport {
    /// Every reachable load/store, ascending by pc.
    pub ops: Vec<MemOpBounds>,
    /// All findings, ascending by pc.
    pub diags: Vec<BoundsDiagnostic>,
}

impl BoundsReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Whether the program has no error-severity bounds findings.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Number of accesses proven inside a region.
    pub fn proven(&self) -> usize {
        self.ops.iter().filter(|o| matches!(o.verdict, BoundsVerdict::Proven { .. })).count()
    }

    /// The claim for the access at `pc`, if it is a reachable memory op.
    pub fn op_at(&self, pc: usize) -> Option<&MemOpBounds> {
        self.ops.iter().find(|o| o.pc == pc)
    }

    /// Serializes the report as one flat JSON object (for `dvrsim lint
    /// --bounds --json`). Hand-rolled to keep the analyzer dependency-free.
    pub fn to_json(&self, name: &str, prog: Option<&Program>) -> String {
        use std::fmt::Write;
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = format!(
            "{{\"program\":\"{}\",\"errors\":{},\"warnings\":{},\"proven\":{},\"ops\":[",
            escape(name),
            self.errors(),
            self.warnings(),
            self.proven(),
        );
        for (i, o) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"pc\":{},\"kind\":\"{}\",\"width\":{},\"lo\":{},\"hi\":{},\
                 \"verdict\":\"{}\",\"in_spawn_chain\":{}}}",
                o.pc,
                if o.is_load { "load" } else { "store" },
                o.width,
                o.addr.lo,
                o.addr.hi,
                o.verdict,
                o.in_spawn_chain,
            );
        }
        out.push_str("],\"diags\":[");
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let line = prog
                .and_then(|p| p.source_line(d.pc))
                .map(|l| l.to_string())
                .unwrap_or_else(|| "null".to_string());
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"severity\":\"{}\",\"pc\":{},\"line\":{},\"message\":\"{}\"}}",
                d.kind.name(),
                d.severity,
                d.pc,
                line,
                escape(&d.message)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Runs the bounds verifier over `prog`. `mem` (the workload's initial
/// memory image) feeds read-only-region content bounds to the interval
/// analysis; passing `None` weakens precision but stays sound.
///
/// Programs with no `.region` declarations always produce an empty report.
pub fn check_bounds(prog: &Program, mem: Option<&SparseMemory>) -> BoundsReport {
    let instrs = prog.instrs();
    let regions = prog.regions();
    if regions.is_empty() || instrs.is_empty() {
        return BoundsReport::default();
    }

    let cfg = Cfg::build(instrs);
    let dfg = DefUseGraph::build(&cfg, instrs);
    let loops = find_loops(&cfg, instrs);
    let intervals = analyze_intervals(prog, mem);
    let addr = analyze_addresses_with(&cfg, instrs, &dfg, &loops, Some(&intervals));
    let deps = analyze_deps(&addr, &loops);
    let coverage = predict_coverage(&cfg, instrs, &loops, &addr, &deps);

    // Loads a spawned subthread would replay speculatively: the root and
    // every dependent of each expected-spawn chain.
    let mut spawn_loads: Vec<usize> = Vec::new();
    for c in coverage.expected_spawns() {
        spawn_loads.push(c.stride_pc);
        spawn_loads.extend(c.dependents.iter().map(|&(pc, _)| pc));
    }
    spawn_loads.sort_unstable();
    spawn_loads.dedup();

    let mut report = BoundsReport::default();
    for (pc, instr) in instrs.iter().enumerate() {
        let (is_load, width) = match instr {
            Instr::Load { width, .. } => (true, width.bytes()),
            Instr::Store { width, .. } => (false, width.bytes()),
            _ => continue,
        };
        // Unreachable accesses make no claim (and execute no access).
        let Some(addr_iv) = intervals.addr_interval(pc) else { continue };

        // The access covers [lo, hi + width - 1]; a wrap past the top of
        // the address space can never be proven in-bounds.
        let end = addr_iv.hi.checked_add(width - 1);
        let containing = end.and_then(|end| {
            regions
                .iter()
                .find(|&&(_, base, len)| addr_iv.lo >= base && end - base < len)
                .map(|(name, _, _)| name.clone())
        });
        let disjoint = match end {
            // Interval fully below or fully above each region: every
            // concrete address the access can take is undeclared.
            // `base + len - 1` cannot overflow: regions are validated to
            // fit in the address space and be non-empty.
            Some(end) => {
                regions.iter().all(|&(_, base, len)| end < base || addr_iv.lo > base + (len - 1))
            }
            None => false,
        };
        let in_spawn_chain = is_load && spawn_loads.binary_search(&pc).is_ok();

        let verdict = match (containing, disjoint) {
            (Some(region), _) => BoundsVerdict::Proven { region },
            (None, true) => {
                report.diags.push(BoundsDiagnostic {
                    kind: BoundsKind::OutOfBoundsAccess,
                    severity: Severity::Error,
                    pc,
                    message: format!(
                        "{} of address {addr_iv} (width {width}) lies outside every \
                         declared region",
                        if is_load { "load" } else { "store" },
                    ),
                });
                BoundsVerdict::OutOfBounds
            }
            (None, false) => {
                let severity = if in_spawn_chain {
                    Severity::Error
                } else {
                    BoundsKind::UnprovenBounds.severity()
                };
                let escalation = if in_spawn_chain {
                    "; a Discovery chain expected to spawn replays this load speculatively \
                     across a full vector of lanes"
                } else {
                    ""
                };
                report.diags.push(BoundsDiagnostic {
                    kind: BoundsKind::UnprovenBounds,
                    severity,
                    pc,
                    message: format!(
                        "cannot prove {} of address {addr_iv} (width {width}) stays inside \
                         a declared region{escalation}",
                        if is_load { "load" } else { "store" },
                    ),
                });
                BoundsVerdict::Unproven
            }
        };
        report.ops.push(MemOpBounds { pc, is_load, width, addr: addr_iv, verdict, in_spawn_chain });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::parse_program;

    #[test]
    fn no_regions_is_vacuously_empty() {
        let p = parse_program("li r1, 4096\nld8 r2, [r1 + 0]\nhalt").unwrap();
        let r = check_bounds(&p, None);
        assert!(r.ops.is_empty());
        assert!(r.diags.is_empty());
        assert!(r.is_clean());
    }

    #[test]
    fn masked_index_is_proven_inside_its_region() {
        // data is 8 words; the index is masked to [0, 7].
        let p = parse_program(
            ".region data 0x1000 64
             li r1, 0x1000
             li r2, 0
             li r3, 8
          top:
             andi r4, r2, 7
             ld8 r5, [r1 + r4<<3 + 0]
             add r6, r6, r5
             addi r2, r2, 1
             slt r7, r2, r3
             bnz r7, top
             halt",
        )
        .unwrap();
        let r = check_bounds(&p, None);
        assert!(r.is_clean());
        assert_eq!(r.warnings(), 0, "{:?}", r.diags);
        assert_eq!(r.proven(), 1);
        assert_eq!(
            r.op_at(4).unwrap().verdict,
            BoundsVerdict::Proven { region: "data".to_string() }
        );
    }

    #[test]
    fn constant_access_past_the_end_is_an_error() {
        let p = parse_program(
            ".region data 0x1000 64
             li r1, 0x1040
             ld8 r2, [r1 + 0]
             halt",
        )
        .unwrap();
        let r = check_bounds(&p, None);
        assert_eq!(r.errors(), 1);
        assert_eq!(r.diags[0].kind, BoundsKind::OutOfBoundsAccess);
        assert_eq!(r.diags[0].pc, 1);
        assert_eq!(r.op_at(1).unwrap().verdict, BoundsVerdict::OutOfBounds);
    }

    #[test]
    fn straddling_access_is_an_unproven_warning() {
        // Mask allows [0, 15] but the region holds 8 words: indices 8..=15
        // escape, 0..=7 do not — neither proven nor disjoint. Straight-line
        // code (no loop), so no Discovery chain escalates it.
        let p = parse_program(
            ".region data 0x1000 64
             .region scratch 0x2000 8
             li r1, 0x1000
             li r2, 0x2000
             ld8 r3, [r2 + 0]
             andi r3, r3, 15
             ld8 r4, [r1 + r3<<3 + 0]
             halt",
        )
        .unwrap();
        let r = check_bounds(&p, None);
        assert!(r.is_clean(), "warning only: {:?}", r.diags);
        assert_eq!(r.warnings(), 1, "{:?}", r.diags);
        let d = r.diags.iter().find(|d| d.pc == 4).unwrap();
        assert_eq!(d.kind, BoundsKind::UnprovenBounds);
        assert_eq!(d.severity, Severity::Warning);
    }

    #[test]
    fn unproven_gather_in_spawn_chain_escalates_to_error() {
        // Striding load feeds a dependent gather whose index bound (from
        // the region's content) exceeds the table region — the oob_gather
        // shape. The chain is expected to spawn, so the warning escalates.
        let p = parse_program(
            ".region idx 0x1000 64
             .region table 0x2000 64
             li r1, 0x1000
             li r2, 0x2000
             li r3, 0
             li r4, 8
          top:
             ld8 r5, [r1 + r3<<3 + 0]
             ld8 r6, [r2 + r5<<3 + 0]
             xor r7, r7, r6
             addi r3, r3, 1
             slt r8, r3, r4
             bnz r8, top
             halt",
        )
        .unwrap();
        // Index values 0..16: half of them land past table's 8 words.
        let mut mem = sim_isa::SparseMemory::new();
        for k in 0..8u64 {
            mem.write_u64(0x1000 + 8 * k, 2 * k);
        }
        let r = check_bounds(&p, Some(&mem));
        assert!(!r.is_clean());
        let d = r.diags.iter().find(|d| d.pc == 5).expect("gather flagged");
        assert_eq!(d.kind, BoundsKind::UnprovenBounds);
        assert_eq!(d.severity, Severity::Error);
        assert!(d.message.contains("Discovery chain"), "{}", d.message);
        assert!(r.op_at(5).unwrap().in_spawn_chain);
        // The striding root itself is proven.
        assert_eq!(r.op_at(4).unwrap().verdict, BoundsVerdict::Proven { region: "idx".into() });
    }

    #[test]
    fn json_shape_is_stable() {
        let p = parse_program(
            ".region data 0x1000 64
             li r1, 0x1040
             ld8 r2, [r1 + 0]
             halt",
        )
        .unwrap();
        let r = check_bounds(&p, None);
        let j = r.to_json("t", Some(&p));
        assert!(j.contains("\"program\":\"t\""), "{j}");
        assert!(j.contains("\"verdict\":\"out-of-bounds\""), "{j}");
        assert!(j.contains("\"kind\":\"out-of-bounds-access\""), "{j}");
    }
}
