//! Forward secret-taint information flow.
//!
//! Programs declare secret memory with the `.secret <addr> <len>` directive
//! (or [`Asm::secret`](sim_isa::Asm::secret)); this pass propagates a taint
//! lattice forward over the reaching-definitions graph and reports every
//! *transmitter* — an instruction whose execution would modulate a
//! micro-architectural channel with a secret-derived value:
//!
//! * **secret-dependent-branch** (warning) — a conditional branch whose
//!   condition register carries taint; leaks one bit per execution through
//!   the branch predictor / fetch stream.
//! * **secret-addressed-load** (warning) — a load or store whose *address*
//!   registers carry taint; leaks through the cache-line it touches.
//! * **speculative-gather-gadget** (error, the highest severity) — a
//!   secret-addressed load that is *also* a dependent load of a Discovery
//!   chain [`predict_coverage`](crate::predict_coverage) expects to spawn:
//!   VR/DVR will gather it dozens of lanes at a time under speculation,
//!   with no architectural instruction ever touching the secret-indexed
//!   line (the attack class of Karuppanan & Mirbagher Ajorpaz).
//!
//! The lattice is a plain may-taint bit per definition site, seeded at
//! loads that provably read a declared secret range (via the address pass's
//! constant `region_base`) and closed under ALU flow, load-value flow, and
//! store→load flow at region granularity (a store of a tainted value to a
//! statically named region marks every later load of that region tainted).
//! Like every static pass here it *under*-approximates: a load whose base
//! register is not statically constant is never considered a secret source
//! — the dynamic taint oracle (`dvrsim leak-audit`) exists to catch what
//! this pass cannot see.

use std::fmt;

use sim_isa::{Instr, Program, Reg};

use crate::addr::analyze_addresses;
use crate::cfg::Cfg;
use crate::deps::analyze_deps;
use crate::dfg::{const_use, DefUseGraph};
use crate::diag::Severity;
use crate::loops::find_loops;
use crate::predict::predict_coverage;

/// The kind of leakage transmitter a [`LeakDiagnostic`] reports.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum LeakKind {
    /// A conditional branch tests a secret-tainted register.
    SecretDependentBranch,
    /// A load (or store) forms its address from a secret-tainted register.
    SecretAddressedLoad,
    /// A secret-addressed dependent load inside a Discovery chain that the
    /// coverage prediction expects VR/DVR to vectorize.
    SpeculativeGatherGadget,
}

impl LeakKind {
    /// Default severity: the gather gadget is the one the runahead engine
    /// itself amplifies, so only it is error-severity.
    pub fn severity(self) -> Severity {
        match self {
            LeakKind::SecretDependentBranch | LeakKind::SecretAddressedLoad => Severity::Warning,
            LeakKind::SpeculativeGatherGadget => Severity::Error,
        }
    }

    /// Stable kebab-case name used in rendered diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            LeakKind::SecretDependentBranch => "secret-dependent-branch",
            LeakKind::SecretAddressedLoad => "secret-addressed-load",
            LeakKind::SpeculativeGatherGadget => "speculative-gather-gadget",
        }
    }
}

impl fmt::Display for LeakKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One leakage finding, anchored to the transmitting instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct LeakDiagnostic {
    /// What kind of transmitter this is.
    pub kind: LeakKind,
    /// How serious it is (see [`LeakKind::severity`]).
    pub severity: Severity,
    /// Program counter of the transmitting instruction.
    pub pc: usize,
    /// Human-readable description.
    pub message: String,
}

impl LeakDiagnostic {
    fn new(kind: LeakKind, pc: usize, message: String) -> Self {
        LeakDiagnostic { kind, severity: kind.severity(), pc, message }
    }

    /// Renders the diagnostic, pointing at the workload source line when
    /// the program was parsed from text.
    pub fn render(&self, prog: Option<&Program>) -> String {
        let loc = match prog.and_then(|p| p.source_line(self.pc)) {
            Some(line) => format!("pc {} (line {})", self.pc, line),
            None => format!("pc {}", self.pc),
        };
        format!("{}[{}] {}: {}", self.severity, self.kind.name(), loc, self.message)
    }
}

/// Result of [`analyze_taint`].
#[derive(Clone, Debug, Default)]
pub struct TaintReport {
    /// All findings, sorted by program counter then kind.
    pub leaks: Vec<LeakDiagnostic>,
    /// Definition sites (pcs) whose value may carry secret taint, ascending.
    pub tainted_defs: Vec<usize>,
    /// The secret-source loads (pcs that provably read a declared secret
    /// range), ascending.
    pub sources: Vec<usize>,
}

impl TaintReport {
    /// Number of error-severity findings (gather gadgets).
    pub fn errors(&self) -> usize {
        self.leaks.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.leaks.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Whether the program has no speculative gather gadgets.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Pcs of the speculative-gather-gadget findings, ascending.
    pub fn gadget_pcs(&self) -> Vec<usize> {
        self.leaks
            .iter()
            .filter(|d| d.kind == LeakKind::SpeculativeGatherGadget)
            .map(|d| d.pc)
            .collect()
    }

    /// Serializes the report as one flat JSON object (for `dvrsim
    /// lint-taint --json`). Hand-rolled to keep the analyzer
    /// dependency-free.
    pub fn to_json(&self, name: &str, prog: Option<&Program>) -> String {
        use std::fmt::Write;
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = format!(
            "{{\"program\":\"{}\",\"gadgets\":{},\"warnings\":{},\"sources\":{:?},\
             \"tainted_defs\":{:?},\"leaks\":[",
            escape(name),
            self.errors(),
            self.warnings(),
            self.sources,
            self.tainted_defs,
        );
        for (i, d) in self.leaks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let line = prog
                .and_then(|p| p.source_line(d.pc))
                .map(|l| l.to_string())
                .unwrap_or_else(|| "null".to_string());
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"severity\":\"{}\",\"pc\":{},\"line\":{},\"message\":\"{}\"}}",
                d.kind.name(),
                d.severity,
                d.pc,
                line,
                escape(&d.message)
            );
        }
        out.push_str("]}");
        out
    }
}

/// Whether the read of `reg` at `pc` may observe a tainted definition.
fn use_tainted(dfg: &DefUseGraph, tainted: &[bool], pc: usize, reg: Reg) -> bool {
    dfg.defs_for_use(pc, reg).is_some_and(|defs| defs.pcs.iter().any(|&d| tainted[d]))
}

/// The statically named region a memory access targets: the constant value
/// of its base register plus the constant offset, when provable. With the
/// workload `Layout` convention this is the region's base address.
fn static_region(
    dfg: &DefUseGraph,
    known: &[Option<u64>],
    pc: usize,
    addr: &sim_isa::MemAddr,
) -> Option<u64> {
    const_use(dfg, known, pc, addr.base).map(|b| b.wrapping_add(addr.offset as u64))
}

/// Runs the secret-taint pass over `prog`.
///
/// Programs with no `.secret` declarations always produce an empty report.
pub fn analyze_taint(prog: &Program) -> TaintReport {
    let instrs = prog.instrs();
    if prog.secrets().is_empty() || instrs.is_empty() {
        return TaintReport::default();
    }
    let cfg = Cfg::build(instrs);
    let dfg = DefUseGraph::build(&cfg, instrs);
    let loops = find_loops(&cfg, instrs);
    let addr = analyze_addresses(&cfg, instrs, &dfg, &loops);
    let deps = analyze_deps(&addr, &loops);
    let coverage = predict_coverage(&cfg, instrs, &loops, &addr, &deps);

    // May-taint bit per definition site, plus the set of region bases that
    // tainted stores have written. Both grow monotonically, so the nested
    // fixed point terminates; the round cap is defensive.
    let mut tainted = vec![false; instrs.len()];
    let mut tainted_regions: Vec<u64> = Vec::new();
    let mut sources: Vec<usize> = Vec::new();
    let max_rounds = 2 * instrs.len() + 2;
    for _ in 0..max_rounds {
        let mut changed = false;
        for (pc, instr) in instrs.iter().enumerate() {
            match *instr {
                Instr::Load { addr: a, .. } if !tainted[pc] => {
                    let region = static_region(&dfg, &addr.known, pc, &a);
                    let reads_secret = region.is_some_and(|r| prog.is_secret_addr(r));
                    let reads_tainted_region = region.is_some_and(|r| tainted_regions.contains(&r));
                    // A load's value is tainted when it reads secret (or
                    // secret-written) memory, or when its address already
                    // carries taint (the loaded value is then
                    // secret-selected).
                    let addr_tainted = a.regs().any(|r| use_tainted(&dfg, &tainted, pc, r));
                    if reads_secret && !sources.contains(&pc) {
                        sources.push(pc);
                    }
                    if reads_secret || reads_tainted_region || addr_tainted {
                        tainted[pc] = true;
                        changed = true;
                    }
                }
                Instr::Store { rs, addr: a, .. } if use_tainted(&dfg, &tainted, pc, rs) => {
                    if let Some(r) = static_region(&dfg, &addr.known, pc, &a) {
                        if !tainted_regions.contains(&r) {
                            tainted_regions.push(r);
                            changed = true;
                        }
                    }
                }
                Instr::Alu { .. } | Instr::AluImm { .. }
                    if !tainted[pc] && instr.srcs().any(|r| use_tainted(&dfg, &tainted, pc, r)) =>
                {
                    tainted[pc] = true;
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // Transmitters.
    let mut leaks = Vec::new();
    for (pc, instr) in instrs.iter().enumerate() {
        match *instr {
            Instr::Branch { rs, .. } if use_tainted(&dfg, &tainted, pc, rs) => {
                leaks.push(LeakDiagnostic::new(
                    LeakKind::SecretDependentBranch,
                    pc,
                    "branch condition carries secret taint (control channel)".to_string(),
                ));
            }
            Instr::Load { addr: a, .. } | Instr::Store { addr: a, .. } => {
                if !a.regs().any(|r| use_tainted(&dfg, &tainted, pc, r)) {
                    continue;
                }
                let what = if instr.is_store() { "store" } else { "load" };
                // A secret-addressed dependent load of a chain the engine
                // is predicted to spawn from is the gather gadget.
                let gadget = coverage
                    .chains
                    .iter()
                    .find(|c| c.expect_spawn && c.dependents.iter().any(|&(dpc, _)| dpc == pc));
                match gadget {
                    Some(c) => leaks.push(LeakDiagnostic::new(
                        LeakKind::SpeculativeGatherGadget,
                        pc,
                        format!(
                            "secret-addressed {what} is a dependent load of the Discovery \
                             chain rooted at pc {} (stride {:+}): VR/DVR will gather it \
                             speculatively",
                            c.stride_pc, c.stride
                        ),
                    )),
                    None => leaks.push(LeakDiagnostic::new(
                        LeakKind::SecretAddressedLoad,
                        pc,
                        format!("{what} address carries secret taint (cache channel)"),
                    )),
                }
            }
            _ => {}
        }
    }

    leaks.sort_by_key(|d| (d.pc, d.kind));
    sources.sort_unstable();
    let tainted_defs = (0..instrs.len()).filter(|&pc| tainted[pc]).collect();
    TaintReport { leaks, tainted_defs, sources }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::parse_program;

    fn taint(text: &str) -> TaintReport {
        analyze_taint(&parse_program(text).unwrap())
    }

    /// `x = B[S[i]]` over a declared-secret S with enough iterations for
    /// Discovery to spawn.
    const GATHER: &str = "\
        .secret 0x1000 0x2000
        li r1, 0x1000
        li r2, 0x8000
        li r3, 0
        li r4, 1000
        top:
        ld8 r5, [r1 + r3<<3 + 0]
        ld8 r6, [r2 + r5<<3 + 0]
        addi r3, r3, 1
        slt r7, r3, r4
        bnz r7, top
        halt";

    #[test]
    fn no_secrets_no_findings() {
        let r = taint(
            "li r1, 4096\nli r2, 8192\nli r3, 0\nli r4, 1000\ntop:\n\
             ld8 r5, [r1 + r3<<3 + 0]\nld8 r6, [r2 + r5<<3 + 0]\n\
             addi r3, r3, 1\nslt r7, r3, r4\nbnz r7, top\nhalt",
        );
        assert!(r.leaks.is_empty());
        assert!(r.tainted_defs.is_empty());
        assert!(r.is_clean());
    }

    #[test]
    fn gather_over_secret_index_is_a_gadget() {
        let r = taint(GATHER);
        assert_eq!(r.sources, vec![4], "the S[i] load reads the secret range");
        assert_eq!(r.gadget_pcs(), vec![5], "the B[S[i]] load is the gadget");
        assert_eq!(r.errors(), 1);
        assert!(!r.is_clean());
        let d = r.leaks.iter().find(|d| d.kind == LeakKind::SpeculativeGatherGadget).unwrap();
        assert!(d.message.contains("rooted at pc 4"), "{}", d.message);
        assert!(d.render(None).starts_with("error[speculative-gather-gadget] pc 5"));
    }

    #[test]
    fn short_loop_downgrades_gadget_to_plain_transmitter() {
        // Same shape, but only 3 iterations: Discovery never spawns, so the
        // dependent load is a warning-severity transmitter, not a gadget.
        let r = taint(&GATHER.replace("li r4, 1000", "li r4, 3"));
        assert_eq!(r.gadget_pcs(), Vec::<usize>::new());
        assert_eq!(r.errors(), 0);
        let d = r.leaks.iter().find(|d| d.pc == 5).unwrap();
        assert_eq!(d.kind, LeakKind::SecretAddressedLoad);
    }

    #[test]
    fn secret_dependent_branch_is_flagged() {
        let r = taint(
            ".secret 0x1000 8\n\
             li r1, 0x1000\nld8 r2, [r1 + 0]\nbnz r2, @4\nnop\nhalt",
        );
        assert!(r.leaks.iter().any(|d| d.kind == LeakKind::SecretDependentBranch && d.pc == 2));
        assert!(r.is_clean(), "a branch alone is not a gadget");
    }

    #[test]
    fn taint_flows_through_alu_and_memory() {
        // Secret loaded, masked, stored to a scratch region, reloaded, and
        // used as an index: the final load is still secret-addressed.
        let r = taint(
            ".secret 0x1000 8\n\
             li r1, 0x1000\nli r8, 0x4000\nli r9, 0x8000\n\
             ld8 r2, [r1 + 0]\nandi r3, r2, 255\nst8 r3, [r8 + 0]\n\
             ld8 r4, [r8 + 0]\nld8 r5, [r9 + r4<<3 + 0]\nhalt",
        );
        assert!(r.tainted_defs.contains(&6), "reload of secret-written region is tainted");
        assert!(r.leaks.iter().any(|d| d.kind == LeakKind::SecretAddressedLoad && d.pc == 7));
    }

    #[test]
    fn untainted_programs_with_secrets_stay_quiet() {
        // A secret is declared but never read: nothing to report.
        let r = taint(".secret 0x1000 8\nli r1, 0x2000\nld8 r2, [r1 + 0]\nhalt");
        assert!(r.leaks.is_empty());
        assert!(r.sources.is_empty());
    }

    #[test]
    fn gather_attack_workload_is_flagged_as_gadget() {
        let wl = workloads::gather_attack(workloads::SizeClass::Test, 42);
        let r = analyze_taint(&wl.prog);
        assert!(!r.sources.is_empty(), "the striding S[i] load is a provable secret source");
        assert!(!r.is_clean(), "B[S[i]] must be an error-severity gadget");
        assert_eq!(r.gadget_pcs().len(), 1, "exactly one gather gadget: the B[S[i]] load");
        let benign = workloads::Benchmark::Camel.build(None, workloads::SizeClass::Test, 42);
        assert!(analyze_taint(&benign.prog).leaks.is_empty(), "no secrets declared, no report");
    }
}
