//! Memory dependence pass: dependent-load chains per natural loop and
//! may-alias edges between stores and vectorizable loads.
//!
//! The chain machinery is the static mirror of Discovery Mode's Vector
//! Taint Tracker: a per-register taint lattice seeded at one striding
//! ("root") load and propagated through in-loop arithmetic, so every load
//! whose address turns tainted is a dependent load, annotated with its
//! chain depth. The alias pass leans on the workload `Layout` invariant —
//! distinct resolved base addresses name disjoint regions — and reports a
//! may-alias edge whenever it cannot prove a store and a load apart; those
//! are exactly the store-conflict cases that would have to invalidate DVR
//! lanes in a writeback-capable runahead.

use sim_isa::{Instr, Reg, NUM_REGS};

use crate::addr::{AddrAnalysis, AddrClass, MemOp, MAX_CHASE_DEPTH};
use crate::cfg::Cfg;
use crate::loops::LoopInfo;

/// Why a store/load pair could not be proven disjoint.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AliasReason {
    /// Identical static address expression — a read-modify-write of the
    /// same location every iteration.
    ReadModifyWrite,
    /// Both accesses resolve to the same base region.
    SameRegion,
    /// At least one side's base region could not be resolved.
    UnknownRegion,
}

impl std::fmt::Display for AliasReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            AliasReason::ReadModifyWrite => "read-modify-write",
            AliasReason::SameRegion => "same-region",
            AliasReason::UnknownRegion => "unknown-region",
        })
    }
}

/// A may-alias edge from an in-loop store to an in-loop load.
#[derive(Clone, Debug)]
pub struct AliasEdge {
    /// Program counter of the store.
    pub store_pc: usize,
    /// Program counter of the load.
    pub load_pc: usize,
    /// Why the pair may alias.
    pub reason: AliasReason,
}

/// Per-loop dependence summary, parallel to the `loops` slice.
#[derive(Clone, Debug, Default)]
pub struct LoopDeps {
    /// Longest static dependent-load chain in the loop (0 = affine loads
    /// only, 1 = `a[b[i]]`, saturating at
    /// [`MAX_CHASE_DEPTH`](crate::MAX_CHASE_DEPTH)).
    pub chain_depth: usize,
    /// Store→load pairs that could not be proven disjoint, for loads that
    /// are vectorizable (affine striding or pointer-chase).
    pub alias_edges: Vec<AliasEdge>,
}

/// Runs the dependence pass over every loop.
pub fn analyze_deps(addr: &AddrAnalysis, loops: &[LoopInfo]) -> Vec<LoopDeps> {
    loops
        .iter()
        .enumerate()
        .map(|(li, _)| {
            let ops: Vec<&MemOp> = addr.mem_ops.iter().filter(|m| m.loop_idx == Some(li)).collect();
            let chain_depth = ops
                .iter()
                .filter(|m| !m.is_store)
                .filter_map(|m| match m.class {
                    AddrClass::PointerChase { depth } => Some(depth),
                    _ => None,
                })
                .max()
                .unwrap_or(0);

            let mut alias_edges = Vec::new();
            for store in ops.iter().filter(|m| m.is_store) {
                for load in ops.iter().filter(|m| !m.is_store) {
                    let vectorizable = match load.class {
                        AddrClass::Affine { stride } => stride != 0,
                        AddrClass::PointerChase { .. } => true,
                        AddrClass::Irregular => false,
                    };
                    if !vectorizable {
                        continue;
                    }
                    if let Some(reason) = may_alias(store, load) {
                        alias_edges.push(AliasEdge {
                            store_pc: store.pc,
                            load_pc: load.pc,
                            reason,
                        });
                    }
                }
            }
            alias_edges.sort_by_key(|e| (e.store_pc, e.load_pc));
            LoopDeps { chain_depth, alias_edges }
        })
        .collect()
}

/// Disjointness test. `None` = provably disjoint; `Some(reason)` = may
/// alias. Distinct resolved base addresses are taken to name distinct
/// workload regions (the `Layout` allocator never overlaps regions, and
/// every kernel masks indices to its own region) — this is the one
/// unsoundness the audit's `alias-unsound` divergence class exists to
/// cross-check dynamically.
fn may_alias(store: &MemOp, load: &MemOp) -> Option<AliasReason> {
    match (store.region_base, load.region_base) {
        (Some(s), Some(l)) if s != l => None,
        (Some(_), Some(_)) => Some(AliasReason::SameRegion),
        _ => Some(AliasReason::UnknownRegion),
    }
}

/// Refines a [`AliasReason::SameRegion`] edge to
/// [`AliasReason::ReadModifyWrite`] when the two accesses share one static
/// address expression.
pub fn refine_rmw(instrs: &[Instr], edge: &mut AliasEdge) {
    let addr_of = |pc: usize| match instrs[pc] {
        Instr::Load { addr, .. } | Instr::Store { addr, .. } => Some(addr),
        _ => None,
    };
    if edge.reason == AliasReason::SameRegion {
        if let (Some(a), Some(b)) = (addr_of(edge.store_pc), addr_of(edge.load_pc)) {
            if a == b {
                edge.reason = AliasReason::ReadModifyWrite;
            }
        }
    }
}

/// Dependent loads hanging off the root load at `root_pc` within loop `l`:
/// `(pc, depth)` pairs, depth 1 = address uses the root's value directly.
/// This is the static mirror of the Vector Taint Tracker, with a depth per
/// register instead of one bit.
pub fn dependents_of(
    cfg: &Cfg,
    instrs: &[Instr],
    l: &LoopInfo,
    root_pc: usize,
) -> Vec<(usize, usize)> {
    let body_pcs: Vec<usize> =
        l.body.iter().flat_map(|&b| cfg.blocks[b].start..cfg.blocks[b].end).collect();
    // depth[r] = Some(d): r may hold a value d loads deep from the root
    // (the root's own value is depth 0).
    let mut depth: [Option<usize>; NUM_REGS] = [None; NUM_REGS];
    let root_dst = match instrs[root_pc] {
        Instr::Load { rd, .. } => rd,
        _ => return Vec::new(),
    };
    depth[root_dst.index()] = Some(0);

    let tainted = |depth: &[Option<usize>; NUM_REGS], r: Reg| depth[r.index()];
    loop {
        let mut changed = false;
        for &pc in &body_pcs {
            if pc == root_pc {
                continue;
            }
            let from_srcs: Option<usize> = match instrs[pc] {
                Instr::Alu { ra, rb, .. } => {
                    [tainted(&depth, ra), tainted(&depth, rb)].into_iter().flatten().max()
                }
                Instr::AluImm { ra, .. } => tainted(&depth, ra),
                Instr::Load { addr, .. } => addr
                    .regs()
                    .filter_map(|r| tainted(&depth, r))
                    .max()
                    .map(|d| (d + 1).min(MAX_CHASE_DEPTH)),
                _ => None,
            };
            if let (Some(d), Some(rd)) = (from_srcs, instrs[pc].dst()) {
                let slot = &mut depth[rd.index()];
                if slot.is_none_or(|cur| d > cur) {
                    *slot = Some(d);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let mut deps = Vec::new();
    for &pc in &body_pcs {
        if pc == root_pc || !instrs[pc].is_load() {
            continue;
        }
        if let Instr::Load { addr, .. } = instrs[pc] {
            if let Some(d) = addr.regs().filter_map(|r| tainted(&depth, r)).max() {
                deps.push((pc, (d + 1).min(MAX_CHASE_DEPTH)));
            }
        }
    }
    deps.sort_unstable();
    deps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::analyze_addresses;
    use crate::dfg::DefUseGraph;
    use crate::loops::find_loops;
    use sim_isa::parse_program;

    fn run(text: &str) -> (Cfg, Vec<Instr>, AddrAnalysis, Vec<LoopInfo>, Vec<LoopDeps>) {
        let p = parse_program(text).unwrap();
        let instrs = p.instrs().to_vec();
        let cfg = Cfg::build(&instrs);
        let dfg = DefUseGraph::build(&cfg, &instrs);
        let loops = find_loops(&cfg, &instrs);
        let addr = analyze_addresses(&cfg, &instrs, &dfg, &loops);
        let deps = analyze_deps(&addr, &loops);
        (cfg, instrs, addr, loops, deps)
    }

    #[test]
    fn chain_depth_counts_the_longest_chain() {
        let (.., deps) =
            run("li r1, 4096\nli r2, 8192\nli r8, 12288\nli r3, 0\nli r4, 100\ntop:\n\
             ld8 r5, [r1 + r3<<3 + 0]\nld8 r6, [r2 + r5<<3 + 0]\nld8 r9, [r8 + r6<<3 + 0]\n\
             addi r3, r3, 1\nslt r7, r3, r4\nbnz r7, top\nhalt");
        assert_eq!(deps[0].chain_depth, 2);
    }

    #[test]
    fn disjoint_regions_do_not_alias() {
        // Store to region C, load from region A: provably apart.
        let (.., deps) = run("li r1, 4096\nli r2, 8192\nli r3, 0\nli r4, 100\ntop:\n\
             ld8 r5, [r1 + r3<<3 + 0]\nst8 r5, [r2 + r3<<3 + 0]\n\
             addi r3, r3, 1\nslt r7, r3, r4\nbnz r7, top\nhalt");
        assert!(deps[0].alias_edges.is_empty());
    }

    #[test]
    fn same_region_store_aliases_chase_load() {
        // C[h]++ against a load from C — the DVR store-conflict case.
        let (instrs, deps) = {
            let (_, instrs, _, _, deps) =
                run("li r1, 4096\nli r2, 8192\nli r3, 0\nli r4, 100\ntop:\n\
                 ld8 r5, [r1 + r3<<3 + 0]\nld8 r6, [r2 + r5<<3 + 0]\naddi r6, r6, 1\n\
                 st8 r6, [r2 + r5<<3 + 0]\naddi r3, r3, 1\nslt r7, r3, r4\nbnz r7, top\nhalt");
            (instrs, deps)
        };
        assert_eq!(deps[0].alias_edges.len(), 1);
        let mut e = deps[0].alias_edges[0].clone();
        assert_eq!((e.store_pc, e.load_pc), (7, 5));
        assert_eq!(e.reason, AliasReason::SameRegion);
        refine_rmw(&instrs, &mut e);
        assert_eq!(e.reason, AliasReason::ReadModifyWrite);
    }

    #[test]
    fn dependents_track_depth_per_root() {
        let (cfg, instrs, _, loops, _) =
            run("li r1, 4096\nli r2, 8192\nli r8, 12288\nli r3, 0\nli r4, 100\ntop:\n\
             ld8 r5, [r1 + r3<<3 + 0]\nld8 r6, [r2 + r5<<3 + 0]\nld8 r9, [r8 + r6<<3 + 0]\n\
             addi r3, r3, 1\nslt r7, r3, r4\nbnz r7, top\nhalt");
        let deps = dependents_of(&cfg, &instrs, &loops[0], 5);
        assert_eq!(deps, vec![(6, 1), (7, 2)]);
    }
}
