//! Flow-sensitive interval abstract interpretation over the CFG.
//!
//! Every register is tracked as an unsigned interval `[lo, hi]` per program
//! point, computed by a classic worklist fixed point with delayed
//! threshold widening at join points and a short narrowing pass. Two
//! refinements make the domain strong enough to bound the CSR-style loops
//! the benchmarks are built from:
//!
//! * **Conditional-branch edge refinement** — when a branch tests the
//!   result of a compare (`slt`/`sltu`/`seq`/`sne`) whose operands are
//!   still live, the taken/fall-through successor states are narrowed by
//!   the compare's outcome, so `i < n` loops carry `i ∈ [.., n-1]` into
//!   the body.
//! * **Read-only-region content bounds** — regions declared with
//!   `.region` that no store can target keep their initial contents for
//!   the whole run, so an 8-byte load whose address interval is proven
//!   inside such a region is bounded by the minimum/maximum word stored
//!   there at program start. This is what bounds a loaded loop bound like
//!   `end = offs[v + 1]` and, transitively, the inner-loop induction
//!   variable and every address computed from it.
//!
//! The content-bound refinement is *conditional*: a store is attributed to
//! the region its constant-resolvable base register points into, and a
//! store whose base cannot be resolved (or escapes every region)
//! pessimizes **all** regions to writable. The bounds verifier
//! ([`verify_bounds`](crate::verify_bounds)) independently checks that
//! every store stays inside its region, and the dynamic bounds oracle
//! cross-checks the static intervals against observed addresses, so a
//! workload that violates the attribution is flagged rather than silently
//! mis-bounded.
//!
//! Determinism: the worklist is a plain vector of block indices, all maps
//! are vectors indexed by pc/block, and the widening threshold set is a
//! sorted `Vec` — no hash-map iteration anywhere, so results are identical
//! across hosts.

use std::fmt;

use sim_isa::{AluOp, Instr, MemAddr, MemWidth, Program, Reg, SparseMemory, NUM_REGS};

use crate::cfg::Cfg;
use crate::dfg::{const_use, known_constants, DefUseGraph};

/// An unsigned 64-bit interval `[lo, hi]`, `lo <= hi`. The bottom element
/// (unreachable code) is represented externally as `Option<_> = None`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Interval {
    /// Smallest possible value.
    pub lo: u64,
    /// Largest possible value.
    pub hi: u64,
}

/// The signed sign bit: values at or above this are negative as `i64`.
const SIGN: u64 = 1 << 63;

impl Interval {
    /// The full domain `[0, u64::MAX]`.
    pub const TOP: Interval = Interval { lo: 0, hi: u64::MAX };

    /// The interval holding exactly `v`.
    pub fn exact(v: u64) -> Interval {
        Interval { lo: v, hi: v }
    }

    /// `[lo, hi]`; panics (debug) when `lo > hi`.
    pub fn new(lo: u64, hi: u64) -> Interval {
        debug_assert!(lo <= hi, "malformed interval [{lo}, {hi}]");
        Interval { lo, hi }
    }

    /// `Some(v)` when the interval is the singleton `{v}`.
    pub fn as_const(self) -> Option<u64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    /// Whether the interval is the whole domain.
    pub fn is_top(self) -> bool {
        self == Interval::TOP
    }

    /// Whether `v` lies inside the interval.
    pub fn contains(self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Least upper bound.
    pub fn join(self, other: Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Greatest lower bound, `None` when the intervals are disjoint.
    pub fn meet(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        (lo <= hi).then_some(Interval { lo, hi })
    }

    /// Whether every value is non-negative as a signed 64-bit integer.
    pub fn signed_nonneg(self) -> bool {
        self.hi < SIGN
    }

    /// Whether every value is negative as a signed 64-bit integer.
    fn signed_neg(self) -> bool {
        self.lo >= SIGN
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_top() {
            f.write_str("[0, 2^64)")
        } else if let Some(v) = self.as_const() {
            write!(f, "{v:#x}")
        } else {
            write!(f, "[{:#x}, {:#x}]", self.lo, self.hi)
        }
    }
}

/// One abstract register file: an interval per architectural register.
pub type RegIntervals = [Interval; NUM_REGS];

/// Transfer function for a binary ALU operation on intervals.
///
/// Wrapping cases (and signed cases the unsigned domain cannot express)
/// fall back to [`Interval::TOP`]; singleton operands evaluate exactly via
/// [`AluOp::eval`], so the function agrees with the executor bit for bit
/// on constants.
pub fn alu_interval(op: AluOp, a: Interval, b: Interval) -> Interval {
    if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
        return Interval::exact(op.eval(x, y));
    }
    match op {
        AluOp::Add => match (a.lo.checked_add(b.lo), a.hi.checked_add(b.hi)) {
            (Some(lo), Some(hi)) => Interval::new(lo, hi),
            _ => Interval::TOP,
        },
        AluOp::Sub => {
            if a.lo >= b.hi {
                Interval::new(a.lo - b.hi, a.hi - b.lo)
            } else {
                Interval::TOP
            }
        }
        AluOp::Mul => match a.hi.checked_mul(b.hi) {
            // Unsigned multiplication is monotone, so if the upper corner
            // fits, the lower corner does too.
            Some(hi) => Interval::new(a.lo * b.lo, hi),
            None => Interval::TOP,
        },
        // Division and remainder are signed; model only the all-non-negative,
        // nonzero-divisor case where they coincide with unsigned.
        AluOp::Div => {
            if a.signed_nonneg() && b.signed_nonneg() && b.lo >= 1 {
                Interval::new(a.lo / b.hi, a.hi / b.lo)
            } else {
                Interval::TOP
            }
        }
        AluOp::Rem => {
            if a.signed_nonneg() && b.signed_nonneg() && b.lo >= 1 {
                Interval::new(0, a.hi.min(b.hi - 1))
            } else {
                Interval::TOP
            }
        }
        AluOp::And => Interval::new(0, a.hi.min(b.hi)),
        AluOp::Or => Interval::new(a.lo.max(b.lo), bit_cover(a.hi | b.hi)),
        AluOp::Xor => Interval::new(0, bit_cover(a.hi | b.hi)),
        AluOp::Shl => match b.as_const() {
            Some(s) => {
                let s = (s & 63) as u32;
                if a.hi <= u64::MAX >> s {
                    Interval::new(a.lo << s, a.hi << s)
                } else {
                    Interval::TOP
                }
            }
            None => Interval::TOP,
        },
        AluOp::Shr => match b.as_const() {
            Some(s) => {
                let s = (s & 63) as u32;
                Interval::new(a.lo >> s, a.hi >> s)
            }
            // An unknown logical shift can only shrink the value.
            None => Interval::new(0, a.hi),
        },
        AluOp::Sra => {
            if a.signed_nonneg() {
                // Non-negative operands shift like `shr`.
                alu_interval(AluOp::Shr, a, b)
            } else {
                Interval::TOP
            }
        }
        AluOp::Slt => compare_interval(lt_signed(a, b)),
        AluOp::Sltu => compare_interval(lt_unsigned(a, b)),
        AluOp::Seq => {
            if a.meet(b).is_none() {
                Interval::exact(0)
            } else {
                Interval::new(0, 1)
            }
        }
        AluOp::Sne => {
            if a.meet(b).is_none() {
                Interval::exact(1)
            } else {
                Interval::new(0, 1)
            }
        }
        AluOp::Min | AluOp::Max => {
            if a.signed_nonneg() && b.signed_nonneg() {
                if op == AluOp::Min {
                    Interval::new(a.lo.min(b.lo), a.hi.min(b.hi))
                } else {
                    Interval::new(a.lo.max(b.lo), a.hi.max(b.hi))
                }
            } else {
                Interval::TOP
            }
        }
    }
}

/// Smallest all-ones mask covering `v` (e.g. `0b1010 -> 0b1111`): an upper
/// bound for any bitwise combination of values `<= v`.
fn bit_cover(v: u64) -> u64 {
    if v == 0 {
        0
    } else {
        u64::MAX >> v.leading_zeros()
    }
}

/// Decides `a < b` over intervals; `None` when undecidable.
fn lt_unsigned(a: Interval, b: Interval) -> Option<bool> {
    if a.hi < b.lo {
        Some(true)
    } else if a.lo >= b.hi {
        Some(false)
    } else {
        None
    }
}

/// Signed `<` is decidable when neither interval straddles the sign
/// boundary: within one sign class the unsigned order matches the signed
/// order, and a negative interval is below a non-negative one.
fn lt_signed(a: Interval, b: Interval) -> Option<bool> {
    match (a.signed_neg(), b.signed_neg(), a.signed_nonneg(), b.signed_nonneg()) {
        (true, _, _, true) => Some(true),
        (_, true, true, _) => Some(false),
        (true, true, _, _) | (_, _, true, true) => lt_unsigned(a, b),
        _ => None,
    }
}

fn compare_interval(decided: Option<bool>) -> Interval {
    match decided {
        Some(true) => Interval::exact(1),
        Some(false) => Interval::exact(0),
        None => Interval::new(0, 1),
    }
}

/// Interval of the effective address `base + (index << scale) + offset` in
/// the abstract register file `st`.
pub fn addr_interval_in(st: &RegIntervals, addr: &MemAddr) -> Interval {
    let mut iv = st[addr.base.index()];
    if let Some(ix) = addr.index {
        let shifted =
            alu_interval(AluOp::Shl, st[ix.index()], Interval::exact(u64::from(addr.scale)));
        iv = alu_interval(AluOp::Add, iv, shifted);
    }
    // The offset is added with wrapping semantics; map a negative offset to
    // a subtraction so small intervals survive.
    if addr.offset >= 0 {
        iv = alu_interval(AluOp::Add, iv, Interval::exact(addr.offset as u64));
    } else {
        iv = alu_interval(AluOp::Sub, iv, Interval::exact(addr.offset.unsigned_abs()));
    }
    iv
}

/// How many times an edge may grow a block's entry state by plain join
/// before widening kicks in.
const WIDEN_DELAY: u32 = 3;

/// How many decreasing (narrowing) sweeps run after the widened fixed
/// point.
const NARROW_ROUNDS: usize = 2;

/// Result of the interval analysis: per-pc abstract register files plus
/// per-region writability and content bounds.
pub struct AbsInt {
    /// Abstract register file *before* executing each pc; `None` when the
    /// pc is unreachable.
    entry: Vec<Option<RegIntervals>>,
    /// Effective-address interval per memory instruction (`None`
    /// elsewhere or when unreachable).
    addr: Vec<Option<Interval>>,
    /// Interval of the value written by the instruction at each pc
    /// (`None` for non-defining or unreachable instructions).
    def: Vec<Option<Interval>>,
    /// Per declared region (in `Program::regions` order): whether no store
    /// can target it.
    pub read_only: Vec<bool>,
    /// Per declared region: bounds over *every* byte-offset 8-byte window
    /// of its initial image (sound for unaligned loads), available only
    /// for read-only regions of at least 8 bytes.
    pub content: Vec<Option<Interval>>,
    /// Per declared region: bounds over only the 8-byte-aligned words of
    /// its initial image — much tighter than [`AbsInt::content`], used
    /// when the access is provably 8-aligned.
    pub content_aligned: Vec<Option<Interval>>,
}

impl AbsInt {
    /// The abstract register file holding before `pc` executes, or `None`
    /// when `pc` is unreachable (or past the end).
    pub fn entry_state(&self, pc: usize) -> Option<&RegIntervals> {
        self.entry.get(pc).and_then(|s| s.as_ref())
    }

    /// Interval of `reg` just before `pc` executes.
    pub fn reg_before(&self, pc: usize, reg: Reg) -> Option<Interval> {
        self.entry_state(pc).map(|s| s[reg.index()])
    }

    /// Interval of the effective address of the load/store at `pc`.
    pub fn addr_interval(&self, pc: usize) -> Option<Interval> {
        self.addr.get(pc).copied().flatten()
    }

    /// Interval of the value the instruction at `pc` writes to its
    /// destination register.
    pub fn def_interval(&self, pc: usize) -> Option<Interval> {
        self.def.get(pc).copied().flatten()
    }
}

struct Engine<'a> {
    instrs: &'a [Instr],
    cfg: &'a Cfg,
    dfg: &'a DefUseGraph,
    /// `(base, len)` per declared region, in `Program::regions` order.
    regions: Vec<(u64, u64)>,
    read_only: Vec<bool>,
    content: Vec<Option<Interval>>,
    content_aligned: Vec<Option<Interval>>,
    /// Sorted, deduplicated widening thresholds.
    thresholds: Vec<u64>,
}

/// Runs the interval analysis over `prog`. When `mem` (the workload's
/// initial memory image) is provided, read-only regions contribute content
/// bounds to 8-byte loads proven inside them; without it every load is
/// bounded only by its width.
pub fn analyze_intervals(prog: &Program, mem: Option<&SparseMemory>) -> AbsInt {
    let instrs = prog.instrs();
    let cfg = Cfg::build(instrs);
    let dfg = DefUseGraph::build(&cfg, instrs);
    let known = known_constants(instrs, &dfg);
    let regions: Vec<(u64, u64)> = prog.regions().iter().map(|&(_, b, l)| (b, l)).collect();

    // Region writability: attribute each store to the region its
    // constant-resolvable base register (plus offset) points into; an
    // unresolvable or region-escaping store pessimizes everything.
    let mut read_only = vec![true; regions.len()];
    for (pc, instr) in instrs.iter().enumerate() {
        let Instr::Store { addr, .. } = instr else { continue };
        let target = const_use(&dfg, &known, pc, addr.base)
            .map(|b| b.wrapping_add(addr.offset as u64))
            .and_then(|t| regions.iter().position(|&(b, l)| t.wrapping_sub(b) < l));
        match target {
            Some(r) => read_only[r] = false,
            None => {
                read_only.iter_mut().for_each(|w| *w = false);
                break;
            }
        }
    }

    // Content bounds of each read-only region's initial image: every
    // byte-offset 8-byte window for the general (possibly unaligned)
    // case, and the much tighter aligned-words-only scan for accesses
    // proven 8-aligned.
    // Cost cap: very large regions (paper-scale tables) skip the scan —
    // a pure precision loss, never a soundness one.
    const CONTENT_SCAN_MAX: u64 = 1 << 22;
    let mut content: Vec<Option<Interval>> = vec![None; regions.len()];
    let mut content_aligned: Vec<Option<Interval>> = vec![None; regions.len()];
    if let Some(mem) = mem {
        for (i, (&(base, len), &ro)) in regions.iter().zip(&read_only).enumerate() {
            if !ro || !(8..=CONTENT_SCAN_MAX).contains(&len) {
                continue;
            }
            let mut any: Option<Interval> = None;
            let mut aligned: Option<Interval> = None;
            for off in 0..=len - 8 {
                let v = Interval::exact(mem.read_u64(base + off));
                any = Some(any.map_or(v, |acc| acc.join(v)));
                if (base + off) % 8 == 0 {
                    aligned = Some(aligned.map_or(v, |acc| acc.join(v)));
                }
            }
            content[i] = any;
            content_aligned[i] = aligned;
        }
    }

    // Widening thresholds: the program's own constants (and their
    // neighbors, so `i < n` style bounds land exactly), region corners,
    // content bounds, and the domain corners.
    let mut thresholds = vec![0, 1, i64::MAX as u64, SIGN, u64::MAX];
    let mut push = |v: u64| {
        thresholds.push(v.wrapping_sub(1));
        thresholds.push(v);
        thresholds.push(v.wrapping_add(1));
    };
    for instr in instrs {
        match *instr {
            Instr::Imm { value, .. } => push(value as u64),
            Instr::AluImm { imm, .. } => push(imm as u64),
            _ => {}
        }
    }
    for (i, &(base, len)) in regions.iter().enumerate() {
        push(base);
        push(base + len);
        for c in [content[i], content_aligned[i]].into_iter().flatten() {
            push(c.lo);
            push(c.hi);
        }
    }
    thresholds.sort_unstable();
    thresholds.dedup();

    let engine = Engine {
        instrs,
        cfg: &cfg,
        dfg: &dfg,
        regions,
        read_only,
        content,
        content_aligned,
        thresholds,
    };
    engine.run()
}

impl Engine<'_> {
    fn run(self) -> AbsInt {
        let len = self.instrs.len();
        let nb = self.cfg.len();
        let mut ins: Vec<Option<RegIntervals>> = vec![None; nb];
        if nb > 0 {
            // Registers are architecturally zero at program entry.
            ins[0] = Some([Interval::exact(0); NUM_REGS]);
        }

        // Upward phase: worklist with delayed threshold widening.
        let mut joins = vec![0u32; nb];
        let mut work: Vec<usize> = if nb > 0 { vec![0] } else { Vec::new() };
        while let Some(b) = work.pop() {
            let Some(st) = ins[b] else { continue };
            let out = self.transfer_block(b, st);
            for (succ, kind) in self.block_edges(b) {
                let Some(refined) = self.refine_edge(&out, b, kind) else { continue };
                let joined = match &ins[succ] {
                    Some(old) => {
                        let mut j = *old;
                        for (r, n) in j.iter_mut().zip(&refined) {
                            *r = r.join(*n);
                        }
                        j
                    }
                    None => refined,
                };
                if Some(&joined) == ins[succ].as_ref() {
                    continue;
                }
                joins[succ] += 1;
                let next = match &ins[succ] {
                    Some(old) if joins[succ] > WIDEN_DELAY => self.widen(old, &joined),
                    _ => joined,
                };
                ins[succ] = Some(next);
                if !work.contains(&succ) {
                    work.push(succ);
                }
            }
        }

        // Downward phase: recompute entries from predecessor outputs a few
        // times without widening; meeting with the fixed point keeps the
        // result sound while clawing back widening losses.
        let mut incoming: Vec<Vec<(usize, Option<bool>)>> = vec![Vec::new(); nb];
        for b in 0..nb {
            for (succ, kind) in self.block_edges(b) {
                incoming[succ].push((b, kind));
            }
        }
        for _ in 0..NARROW_ROUNDS {
            for b in 0..nb {
                let mut fresh: Option<RegIntervals> =
                    (b == 0).then(|| [Interval::exact(0); NUM_REGS]);
                for &(p, kind) in &incoming[b] {
                    let Some(pst) = ins[p] else { continue };
                    let out = self.transfer_block(p, pst);
                    let Some(refined) = self.refine_edge(&out, p, kind) else { continue };
                    fresh = Some(match fresh {
                        Some(mut f) => {
                            for (r, n) in f.iter_mut().zip(&refined) {
                                *r = r.join(*n);
                            }
                            f
                        }
                        None => refined,
                    });
                }
                ins[b] = match (ins[b], fresh) {
                    (Some(old), Some(f)) => {
                        let mut m = f;
                        for (r, o) in m.iter_mut().zip(&old) {
                            *r = r.meet(*o).unwrap_or(*r);
                        }
                        Some(m)
                    }
                    (_, f) => f,
                };
            }
        }

        // Final sweep: per-pc entry states, address and definition
        // intervals.
        let mut entry: Vec<Option<RegIntervals>> = vec![None; len];
        let mut addr: Vec<Option<Interval>> = vec![None; len];
        let mut def: Vec<Option<Interval>> = vec![None; len];
        for (b, block) in self.cfg.blocks.iter().enumerate() {
            let Some(mut st) = ins[b] else { continue };
            for pc in block.start..block.end {
                entry[pc] = Some(st);
                if let Instr::Load { addr: a, .. } | Instr::Store { addr: a, .. } = &self.instrs[pc]
                {
                    addr[pc] = Some(addr_interval_in(&st, a));
                }
                self.transfer(&mut st, pc);
                if let Some(rd) = self.instrs[pc].dst() {
                    def[pc] = Some(st[rd.index()]);
                }
            }
        }

        AbsInt {
            entry,
            addr,
            def,
            read_only: self.read_only,
            content: self.content,
            content_aligned: self.content_aligned,
        }
    }

    fn transfer_block(&self, b: usize, mut st: RegIntervals) -> RegIntervals {
        let block = &self.cfg.blocks[b];
        for pc in block.start..block.end {
            self.transfer(&mut st, pc);
        }
        st
    }

    fn transfer(&self, st: &mut RegIntervals, pc: usize) {
        match self.instrs[pc] {
            Instr::Imm { rd, value } => st[rd.index()] = Interval::exact(value as u64),
            Instr::Alu { op, rd, ra, rb } => {
                st[rd.index()] = alu_interval(op, st[ra.index()], st[rb.index()]);
            }
            Instr::AluImm { op, rd, ra, imm } => {
                st[rd.index()] = alu_interval(op, st[ra.index()], Interval::exact(imm as u64));
            }
            Instr::Load { rd, addr, width } => {
                let aligned = access_align8(st, &addr);
                st[rd.index()] = self.load_value(addr_interval_in(st, &addr), width, aligned);
            }
            Instr::Store { .. }
            | Instr::Branch { .. }
            | Instr::Jump { .. }
            | Instr::Nop
            | Instr::Halt => {}
        }
    }

    /// Value interval of a load: width-bounded, tightened to the region's
    /// initial content bounds when the whole access range is proven inside
    /// a read-only region (the aligned-words-only bounds when the access
    /// is provably 8-aligned).
    fn load_value(&self, addr: Interval, width: MemWidth, aligned: bool) -> Interval {
        let bytes = width.bytes();
        if bytes < 8 {
            return Interval::new(0, (1u64 << (8 * bytes)) - 1);
        }
        let inside = self.regions.iter().enumerate().find(|&(_, &(base, len))| {
            addr.lo >= base && bytes <= len && addr.hi.wrapping_sub(base) <= len - bytes
        });
        match inside {
            Some((r, _)) if self.read_only[r] => {
                let c = if aligned {
                    self.content_aligned[r].or(self.content[r])
                } else {
                    self.content[r]
                };
                c.unwrap_or(Interval::TOP)
            }
            _ => Interval::TOP,
        }
    }

    /// Outgoing edges of block `b` as `(successor block, branch kind)`
    /// where the kind is `Some(taken?)` for conditional branches.
    fn block_edges(&self, b: usize) -> Vec<(usize, Option<bool>)> {
        let last = self.cfg.blocks[b].end - 1;
        let len = self.instrs.len();
        let mut out = Vec::new();
        let mut push = |pc: usize, kind: Option<bool>| {
            if pc < len {
                out.push((self.cfg.block_of(pc), kind));
            }
        };
        match self.instrs[last] {
            Instr::Halt => {}
            Instr::Jump { target } => push(target, None),
            Instr::Branch { target, .. } => {
                push(target, Some(true));
                push(last + 1, Some(false));
            }
            _ => push(last + 1, None),
        }
        out
    }

    /// Applies branch-outcome refinement to the block-exit state for the
    /// edge of kind `kind` out of block `b`; `None` when the edge is
    /// infeasible.
    fn refine_edge(
        &self,
        out: &RegIntervals,
        b: usize,
        kind: Option<bool>,
    ) -> Option<RegIntervals> {
        let Some(taken) = kind else { return Some(*out) };
        let last = self.cfg.blocks[b].end - 1;
        let Instr::Branch { cond, rs, .. } = self.instrs[last] else { return Some(*out) };
        let mut st = *out;

        // The branch register itself: zero on the not-taken side of `bnz`
        // (and the taken side of `bez`), nonzero on the other.
        let rs_zero = taken == matches!(cond, sim_isa::BranchCond::Eqz);
        let iv = st[rs.index()];
        if rs_zero {
            st[rs.index()] = iv.meet(Interval::exact(0))?;
        } else {
            if iv.as_const() == Some(0) {
                return None;
            }
            if iv.lo == 0 {
                st[rs.index()] = Interval::new(1, iv.hi);
            }
        }

        // When `rs` is the result of exactly one compare in this block and
        // neither it nor the compare operands were redefined since, the
        // branch outcome decides the compare and narrows its operands.
        let defs = self.dfg.defs_for_use(last, rs)?;
        let &[c] = defs.pcs.as_slice() else { return Some(st) };
        if defs.entry || self.cfg.block_of(c) != b {
            return Some(st);
        }
        let (op, ra, rb_iv, rb) = match self.instrs[c] {
            Instr::Alu { op, ra, rb, .. } if op.is_compare() => (op, ra, st[rb.index()], Some(rb)),
            Instr::AluImm { op, ra, imm, .. } if op.is_compare() => {
                (op, ra, Interval::exact(imm as u64), None)
            }
            _ => return Some(st),
        };
        let clobbered = |r: Reg| (c..=last).any(|pc| self.instrs[pc].dst() == Some(r));
        if clobbered(ra) || rb.is_some_and(&clobbered) {
            return Some(st);
        }
        // Compares produce 0/1, so "nonzero" means the compare held.
        let truth = !rs_zero;
        let (na, nb) = refine_compare(op, st[ra.index()], rb_iv, truth)?;
        st[ra.index()] = na;
        if let Some(rb) = rb {
            st[rb.index()] = nb;
        }
        Some(st)
    }

    /// Threshold widening: a bound that moved since the last state jumps
    /// to the nearest enclosing threshold instead of crawling.
    fn widen(&self, old: &RegIntervals, new: &RegIntervals) -> RegIntervals {
        let mut out = *new;
        for (w, (o, n)) in out.iter_mut().zip(old.iter().zip(new)) {
            let lo = if n.lo < o.lo {
                // Largest threshold at or below the new low bound.
                match self.thresholds.partition_point(|&t| t <= n.lo) {
                    0 => 0,
                    i => self.thresholds[i - 1],
                }
            } else {
                n.lo
            };
            let hi = if n.hi > o.hi {
                // Smallest threshold at or above the new high bound.
                *self
                    .thresholds
                    .get(self.thresholds.partition_point(|&t| t < n.hi))
                    .unwrap_or(&u64::MAX)
            } else {
                n.hi
            };
            *w = Interval::new(lo, hi);
        }
        out
    }
}

/// Whether every concrete address of the access is provably 8-byte
/// aligned: the base must be exact, the scaled index must contribute a
/// multiple of 8 (scale >= 3, or an exact index), and the sum with the
/// offset must be aligned.
fn access_align8(st: &RegIntervals, addr: &MemAddr) -> bool {
    let Some(base) = st[addr.base.index()].as_const() else { return false };
    let scaled = match addr.index {
        None => 0u64,
        Some(_) if addr.scale >= 3 => 0,
        Some(ix) => match st[ix.index()].as_const() {
            Some(v) => v.wrapping_shl(u32::from(addr.scale)),
            None => return false,
        },
    };
    base.wrapping_add(scaled).wrapping_add(addr.offset as u64) % 8 == 0
}

/// Narrows compare operands under a known outcome; `None` when the
/// combination is infeasible.
fn refine_compare(
    op: AluOp,
    a: Interval,
    b: Interval,
    truth: bool,
) -> Option<(Interval, Interval)> {
    let lt = |a: Interval, b: Interval| -> Option<(Interval, Interval)> {
        // a < b: a <= b.hi - 1, b >= a.lo + 1.
        let na = a.meet(Interval::new(0, b.hi.checked_sub(1)?))?;
        let nb = b.meet(Interval::new(a.lo.checked_add(1)?, u64::MAX))?;
        Some((na, nb))
    };
    let ge = |a: Interval, b: Interval| -> Option<(Interval, Interval)> {
        // a >= b: a >= b.lo, b <= a.hi.
        let na = a.meet(Interval::new(b.lo, u64::MAX))?;
        let nb = b.meet(Interval::new(0, a.hi))?;
        Some((na, nb))
    };
    let exclude = |from: Interval, v: Interval| -> Option<Interval> {
        match v.as_const() {
            Some(x) if from.as_const() == Some(x) => None,
            Some(x) if from.lo == x => Some(Interval::new(x + 1, from.hi)),
            Some(x) if from.hi == x => Some(Interval::new(from.lo, x - 1)),
            _ => Some(from),
        }
    };
    match (op, truth) {
        // Signed compares refine only when the unsigned order matches the
        // signed order on both operands (same sign class).
        (AluOp::Slt, _)
            if !(a.signed_nonneg() && b.signed_nonneg() || a.signed_neg() && b.signed_neg()) =>
        {
            Some((a, b))
        }
        (AluOp::Slt | AluOp::Sltu, true) => lt(a, b),
        (AluOp::Slt | AluOp::Sltu, false) => ge(a, b),
        (AluOp::Seq, true) | (AluOp::Sne, false) => {
            let m = a.meet(b)?;
            Some((m, m))
        }
        (AluOp::Seq, false) | (AluOp::Sne, true) => Some((exclude(a, b)?, exclude(b, a)?)),
        _ => Some((a, b)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::parse_program;

    fn analyze(text: &str) -> AbsInt {
        analyze_intervals(&parse_program(text).unwrap(), None)
    }

    #[test]
    fn straight_line_constants_are_exact() {
        let a = analyze("li r1, 6\nshli r2, r1, 3\nadd r3, r2, r1\nhalt");
        assert_eq!(a.def_interval(0), Some(Interval::exact(6)));
        assert_eq!(a.def_interval(1), Some(Interval::exact(48)));
        assert_eq!(a.def_interval(2), Some(Interval::exact(54)));
        // Registers start at zero.
        assert_eq!(a.reg_before(0, Reg::R5), Some(Interval::exact(0)));
    }

    #[test]
    fn counted_loop_iv_is_bounded_by_branch_refinement() {
        // for (i = 0; i < 100; i++) — at the body load, i in [0, 99].
        let a = analyze(
            "li r1, 4096\nli r2, 0\nli r3, 100\ntop:\nld8 r5, [r1 + r2<<3 + 0]\n\
             addi r2, r2, 1\nsltu r6, r2, r3\nbnz r6, top\nhalt",
        );
        assert_eq!(a.reg_before(3, Reg::R2), Some(Interval::new(0, 99)));
        // Address of the striding load: 4096 + i*8 with i in [0, 99].
        assert_eq!(a.addr_interval(3), Some(Interval::new(4096, 4096 + 99 * 8)));
        // After the loop, i == 100 exactly (the exit edge knows i >= 100
        // and the latch keeps i <= 100).
        assert_eq!(a.reg_before(7, Reg::R2), Some(Interval::exact(100)));
    }

    #[test]
    fn masked_index_is_bounded_without_branches() {
        // The mask source is a loaded (unknown) value, not a register
        // still holding its architectural zero.
        let a = analyze(
            "li r1, 8192\nld8 r7, [r1 + 0]\nandi r2, r7, 1023\nld8 r3, [r1 + r2<<3 + 0]\nhalt",
        );
        assert_eq!(a.reg_before(3, Reg::R2), Some(Interval::new(0, 1023)));
        assert_eq!(a.addr_interval(3), Some(Interval::new(8192, 8192 + 1023 * 8)));
    }

    #[test]
    fn unreachable_code_has_no_state() {
        let a = analyze("jmp @2\nnop\nhalt");
        assert!(a.entry_state(1).is_none());
        assert!(a.entry_state(2).is_some());
    }

    #[test]
    fn infeasible_edge_is_pruned() {
        // r1 = 0, bnz never takes: the target stays unreachable.
        let a = analyze("li r1, 0\nbnz r1, @4\nli r2, 7\nhalt\nli r2, 9\nhalt");
        assert_eq!(a.def_interval(2), Some(Interval::exact(7)));
        assert!(a.entry_state(4).is_none());
    }

    #[test]
    fn loads_are_width_bounded() {
        let a = analyze("li r1, 4096\nld1 r2, [r1 + 0]\nld4 r3, [r1 + 0]\nld8 r4, [r1 + 0]\nhalt");
        assert_eq!(a.def_interval(1), Some(Interval::new(0, 0xFF)));
        assert_eq!(a.def_interval(2), Some(Interval::new(0, 0xFFFF_FFFF)));
        assert_eq!(a.def_interval(3), Some(Interval::TOP));
    }

    #[test]
    fn read_only_region_bounds_loaded_values() {
        let mut mem = SparseMemory::new();
        for k in 0..8u64 {
            mem.write_u64(0x1000 + 8 * k, 10 + k);
        }
        let p = parse_program(".region table 0x1000 0x40\nli r1, 0x1000\nld8 r2, [r1 + 0]\nhalt")
            .unwrap();
        let a = analyze_intervals(&p, Some(&mem));
        assert_eq!(a.read_only, vec![true]);
        // Every 8-byte window contains at least one data byte, so the low
        // bound is the smallest aligned word; straddled windows push the
        // high bound past the largest aligned word.
        let c = a.content[0].unwrap();
        assert_eq!(c.lo, 10);
        assert!(c.hi >= 17);
        // The aligned-words-only scan is exact, and this load is provably
        // 8-aligned, so its value interval uses the tight bounds.
        assert_eq!(a.content_aligned[0], Some(Interval::new(10, 17)));
        assert_eq!(a.def_interval(1), Some(Interval::new(10, 17)));
    }

    #[test]
    fn a_store_makes_its_region_writable() {
        let mut mem = SparseMemory::new();
        mem.write_u64(0x1000, 42);
        let p = parse_program(
            ".region a 0x1000 0x40\n.region b 0x2000 0x40\n\
             li r1, 0x2000\nst8 r2, [r1 + 0]\nli r3, 0x1000\nld8 r4, [r3 + 0]\nhalt",
        )
        .unwrap();
        let a = analyze_intervals(&p, Some(&mem));
        assert_eq!(a.read_only, vec![true, false]);
        assert!(a.content[1].is_none());
        assert!(a.def_interval(3).is_some_and(|v| !v.is_top()));
    }

    #[test]
    fn unresolvable_store_pessimizes_all_regions() {
        let mut mem = SparseMemory::new();
        mem.write_u64(0x1000, 42);
        let p = parse_program(
            ".region a 0x1000 0x40\n\
             ld8 r1, [r2 + 0]\nst8 r3, [r1 + 0]\nli r4, 0x1000\nld8 r5, [r4 + 0]\nhalt",
        )
        .unwrap();
        let a = analyze_intervals(&p, Some(&mem));
        assert_eq!(a.read_only, vec![false]);
        assert_eq!(a.def_interval(3), Some(Interval::TOP));
    }

    #[test]
    fn widening_terminates_on_unbounded_growth() {
        // i grows without a recognized bound: interval widens to TOP-ish
        // instead of looping forever.
        let a = analyze("li r1, 1\ntop:\nadd r1, r1, r1\nbnz r1, top\nhalt");
        assert!(a.entry_state(1).is_some());
        assert!(a.reg_before(1, Reg::R1).unwrap().hi >= 1);
    }

    #[test]
    fn alu_interval_matches_eval_on_constants() {
        for op in [
            AluOp::Add,
            AluOp::Sub,
            AluOp::Mul,
            AluOp::Div,
            AluOp::Rem,
            AluOp::And,
            AluOp::Or,
            AluOp::Xor,
            AluOp::Shl,
            AluOp::Shr,
            AluOp::Sra,
            AluOp::Slt,
            AluOp::Sltu,
            AluOp::Seq,
            AluOp::Sne,
            AluOp::Min,
            AluOp::Max,
        ] {
            for a in [0u64, 1, 7, u64::MAX - 1, u64::MAX, 1 << 63] {
                for b in [0u64, 1, 3, 63, u64::MAX] {
                    let iv = alu_interval(op, Interval::exact(a), Interval::exact(b));
                    assert_eq!(iv.as_const(), Some(op.eval(a, b)), "{op:?} {a} {b}");
                }
            }
        }
    }

    #[test]
    fn alu_interval_is_sound_on_corners() {
        let cases = [
            Interval::new(0, 5),
            Interval::new(3, 9),
            Interval::new(0, u64::MAX),
            Interval::new(u64::MAX - 3, u64::MAX),
            Interval::new((1 << 63) - 2, (1 << 63) + 2),
        ];
        for op in [AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Div, AluOp::Rem, AluOp::And] {
            for a in cases {
                for b in cases {
                    let iv = alu_interval(op, a, b);
                    for &x in &[a.lo, a.hi] {
                        for &y in &[b.lo, b.hi] {
                            assert!(
                                iv.contains(op.eval(x, y)),
                                "{op:?} {x} {y} -> {} outside {iv}",
                                op.eval(x, y)
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn interval_display_forms() {
        assert_eq!(Interval::TOP.to_string(), "[0, 2^64)");
        assert_eq!(Interval::exact(16).to_string(), "0x10");
        assert_eq!(Interval::new(0, 255).to_string(), "[0x0, 0xff]");
    }
}
