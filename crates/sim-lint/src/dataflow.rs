//! Dataflow analyses over the CFG: dominators, reachability, and a
//! reaching-definitions variant that tracks may-uninitialized registers.

use sim_isa::Instr;

use crate::cfg::Cfg;

/// A dense bitset over block indices (programs are small; a few words).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BlockSet {
    words: Vec<u64>,
}

impl BlockSet {
    /// An empty set sized for `n` blocks.
    pub fn empty(n: usize) -> Self {
        BlockSet { words: vec![0; n.div_ceil(64)] }
    }

    /// A full set over `n` blocks.
    pub fn full(n: usize) -> Self {
        let mut s = Self::empty(n);
        for (i, w) in s.words.iter_mut().enumerate() {
            let remaining = n.saturating_sub(i * 64);
            *w = if remaining >= 64 { u64::MAX } else { (1u64 << remaining) - 1 };
        }
        s
    }

    /// Tests membership.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] >> (i % 64) & 1 != 0
    }

    /// Inserts `i`; returns whether it was newly added.
    pub fn insert(&mut self, i: usize) -> bool {
        let w = &mut self.words[i / 64];
        let bit = 1u64 << (i % 64);
        let added = *w & bit == 0;
        *w |= bit;
        added
    }

    /// Intersects with `other` in place; returns whether anything changed.
    pub fn intersect(&mut self, other: &BlockSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a & b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }
}

/// Blocks reachable from the entry (block 0).
pub fn reachable(cfg: &Cfg) -> BlockSet {
    let mut seen = BlockSet::empty(cfg.len());
    if cfg.is_empty() {
        return seen;
    }
    let mut work = vec![0usize];
    seen.insert(0);
    while let Some(b) = work.pop() {
        for &s in &cfg.blocks[b].succs {
            if seen.insert(s) {
                work.push(s);
            }
        }
    }
    seen
}

/// Iterative dominator sets: `doms[b]` contains every block that dominates
/// `b` (including `b` itself). Unreachable blocks keep the full set, which
/// conservatively keeps them out of back-edge detection.
pub fn dominators(cfg: &Cfg) -> Vec<BlockSet> {
    let n = cfg.len();
    let mut doms: Vec<BlockSet> = (0..n).map(|_| BlockSet::full(n)).collect();
    if n == 0 {
        return doms;
    }
    doms[0] = BlockSet::empty(n);
    doms[0].insert(0);
    let reach = reachable(cfg);
    let mut changed = true;
    while changed {
        changed = false;
        for b in 1..n {
            if !reach.contains(b) {
                continue;
            }
            let mut new = BlockSet::full(n);
            for &p in &cfg.preds[b] {
                if reach.contains(p) {
                    new.intersect(&doms[p]);
                }
            }
            new.insert(b);
            if new != doms[b] {
                doms[b] = new;
                changed = true;
            }
        }
    }
    doms
}

/// Result of the may-uninitialized analysis.
pub struct UninitAnalysis {
    /// Per-block entry state: bit `r` set means register `r` may still be
    /// unwritten on some path reaching the block.
    pub entry: Vec<u16>,
    /// `(pc, reg_index)` pairs where a possibly-unwritten register is read,
    /// deduplicated and sorted by pc then register.
    pub reads: Vec<(usize, usize)>,
}

fn transfer(instrs: &[Instr], start: usize, end: usize, mut mask: u16) -> u16 {
    for instr in &instrs[start..end] {
        if let Some(rd) = instr.dst() {
            mask &= !rd.bit();
        }
    }
    mask
}

/// Forward may-analysis over 16-bit register masks: a register is
/// "may-uninit" at a point if the virtual all-registers-uninitialized
/// definition at the entry reaches it along some path. The union meet makes
/// this the classic reaching-definitions formulation restricted to that one
/// pseudo-definition per register.
pub fn may_uninit(cfg: &Cfg, instrs: &[Instr]) -> UninitAnalysis {
    let n = cfg.len();
    let mut entry = vec![0u16; n];
    if n == 0 {
        return UninitAnalysis { entry, reads: Vec::new() };
    }
    entry[0] = u16::MAX;
    let mut work: Vec<usize> = (0..n).collect();
    while let Some(b) = work.pop() {
        let out = transfer(instrs, cfg.blocks[b].start, cfg.blocks[b].end, entry[b]);
        for &s in &cfg.blocks[b].succs {
            let merged = entry[s] | out;
            if merged != entry[s] {
                entry[s] = merged;
                if !work.contains(&s) {
                    work.push(s);
                }
            }
        }
    }

    let reach = reachable(cfg);
    let mut reads = Vec::new();
    for (b, block) in cfg.blocks.iter().enumerate() {
        if !reach.contains(b) {
            continue;
        }
        let mut mask = entry[b];
        for (off, instr) in instrs[block.start..block.end].iter().enumerate() {
            for src in instr.srcs() {
                if mask & src.bit() != 0 {
                    reads.push((block.start + off, src.index()));
                }
            }
            if let Some(rd) = instr.dst() {
                mask &= !rd.bit();
            }
        }
    }
    reads.sort_unstable();
    reads.dedup();
    UninitAnalysis { entry, reads }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::parse_program;

    fn cfg_of(text: &str) -> (Cfg, Vec<Instr>) {
        let p = parse_program(text).unwrap();
        (Cfg::build(p.instrs()), p.instrs().to_vec())
    }

    #[test]
    fn dominators_of_a_diamond() {
        // 0: branch -> (1 | 2) -> 3
        let (cfg, _) = cfg_of("bnz r1, @3\nnop\njmp @4\nnop\nhalt");
        // blocks: [bnz][nop jmp][nop][halt]
        assert_eq!(cfg.len(), 4);
        let doms = dominators(&cfg);
        assert!(doms[3].contains(0));
        assert!(!doms[3].contains(1));
        assert!(!doms[3].contains(2));
    }

    #[test]
    fn loop_head_dominates_latch() {
        let (cfg, _) = cfg_of("li r1, 3\ntop:\naddi r1, r1, -1\nbnz r1, top\nhalt");
        let doms = dominators(&cfg);
        assert!(doms[1].contains(1));
        assert!(doms[1].contains(0));
    }

    #[test]
    fn uninit_read_detected_and_cleared() {
        let (cfg, instrs) = cfg_of("add r3, r1, r2\nli r1, 1\nadd r4, r1, r1\nhalt");
        let a = may_uninit(&cfg, &instrs);
        // r1 and r2 read uninitialized at pc 0; r1 is clean at pc 2.
        assert_eq!(a.reads, vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn join_keeps_may_uninit() {
        // r2 written on only one side of the diamond -> still may-uninit after.
        let (cfg, instrs) = cfg_of("li r1, 1\nbnz r1, @3\nli r2, 7\nadd r3, r2, r2\nhalt");
        let a = may_uninit(&cfg, &instrs);
        assert!(a.reads.contains(&(3, 2)));
    }

    #[test]
    fn bitset_full_and_intersect() {
        let mut a = BlockSet::full(70);
        assert!(a.contains(69));
        let b = BlockSet::empty(70);
        assert!(a.intersect(&b));
        assert!(!a.contains(0));
    }
}
