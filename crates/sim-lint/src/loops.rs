//! Natural-loop extraction and the Discovery-Mode conformance pass.
//!
//! DVR's Discovery Mode (paper Section 4.1.3) vectorizes a loop only when
//! it can recover, from the dynamic instruction stream, (a) a striding
//! induction variable, (b) the cmp + backward-branch loop-bound idiom, and
//! (c) the load chain hanging off the induction variable. This module
//! recovers the same structure statically so `dvrsim lint` can predict
//! which loops DVR will be able to runahead down.

use std::fmt;

use sim_isa::{AluOp, Instr, Program, Reg};

use crate::cfg::Cfg;
use crate::dataflow::{dominators, BlockSet};

/// Static prediction of how DVR's Discovery Mode will treat a loop.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopClass {
    /// Striding induction + cmp+branch bound + striding loads + dependent
    /// loads: the indirect-chain pattern DVR vectorizes end to end.
    VectorizableChain,
    /// Striding induction + cmp+branch bound + striding loads, no dependent
    /// chain: vector runahead degenerates to stride prefetching.
    VectorizableStride,
    /// Striding induction + cmp+branch bound but no loads addressed by the
    /// induction variable: nothing for runahead to prefetch.
    CounterOnly,
    /// The loop bound follows the cmp+branch idiom but no single-step
    /// induction register exists; Discovery's stride detector never fires.
    NoInduction,
    /// The backward branch is not fed by a compare (e.g. a pointer chase
    /// testing a loaded value): the Loop-Bound Detector cannot latch a trip
    /// count.
    IrregularControl,
}

impl fmt::Display for LoopClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            LoopClass::VectorizableChain => "vectorizable-chain",
            LoopClass::VectorizableStride => "vectorizable-stride",
            LoopClass::CounterOnly => "counter-only",
            LoopClass::NoInduction => "no-induction",
            LoopClass::IrregularControl => "irregular-control",
        })
    }
}

/// One natural loop (back edges merged by head) and what the conformance
/// pass found in it.
#[derive(Clone, Debug)]
pub struct LoopInfo {
    /// Program counter of the loop head (first instruction of the head
    /// block).
    pub head_pc: usize,
    /// Program counter of the latch — the backward branch closing the loop
    /// (the largest-pc back-edge source when several exist).
    pub latch_pc: usize,
    /// Block indices forming the loop body, ascending.
    pub body: Vec<usize>,
    /// Striding induction register and its per-iteration step, when exactly
    /// one in-loop definition of the register exists and it is
    /// `r = r + imm` / `r = r - imm`.
    pub induction: Option<(Reg, i64)>,
    /// Pc of the compare feeding the latch branch, when the cmp+branch
    /// idiom holds.
    pub cmp_pc: Option<usize>,
    /// Pcs of loads addressed through the induction register.
    pub striding_loads: Vec<usize>,
    /// Pcs of loads addressed through a value chained off a striding load.
    pub dependent_loads: Vec<usize>,
    /// Number of stores in the body (memory progress).
    pub stores: usize,
    /// Whether any body block has an edge leaving the loop (or exiting the
    /// program).
    pub has_exit: bool,
    /// The resulting Discovery-Mode classification.
    pub class: LoopClass,
}

impl LoopInfo {
    /// One-line deterministic description; with a [`Program`], the head is
    /// annotated with its label name.
    pub fn describe(&self, prog: Option<&Program>) -> String {
        let label = prog
            .and_then(|p| p.label_at(self.head_pc))
            .map(|n| format!("({n})"))
            .unwrap_or_default();
        let induction = match self.induction {
            Some((r, step)) => format!("{r}{step:+}"),
            None => "-".to_string(),
        };
        format!(
            "loop@{}{} latch@{} blocks={} induction={} cmp-branch={} \
             striding-loads={} dependent-loads={} stores={} class={}",
            self.head_pc,
            label,
            self.latch_pc,
            self.body.len(),
            induction,
            if self.cmp_pc.is_some() { "yes" } else { "no" },
            self.striding_loads.len(),
            self.dependent_loads.len(),
            self.stores,
            self.class,
        )
    }
}

/// Finds natural loops (back edges `u -> h` with `h` dominating `u`,
/// merged by head `h`) and classifies each for Discovery-Mode conformance.
pub fn find_loops(cfg: &Cfg, instrs: &[Instr]) -> Vec<LoopInfo> {
    let n = cfg.len();
    let doms = dominators(cfg);

    // head block -> latch blocks.
    let mut heads: Vec<(usize, Vec<usize>)> = Vec::new();
    for (u, block) in cfg.blocks.iter().enumerate() {
        for &h in &block.succs {
            if doms[u].contains(h) {
                match heads.iter_mut().find(|(head, _)| *head == h) {
                    Some((_, latches)) => latches.push(u),
                    None => heads.push((h, vec![u])),
                }
            }
        }
    }
    heads.sort_unstable_by_key(|(h, _)| cfg.blocks[*h].start);

    heads
        .into_iter()
        .map(|(head, latches)| {
            // Natural-loop body: head plus everything reaching a latch
            // without passing through the head.
            let mut body = BlockSet::empty(n);
            body.insert(head);
            let mut work: Vec<usize> = Vec::new();
            for &l in &latches {
                if body.insert(l) {
                    work.push(l);
                }
            }
            while let Some(b) = work.pop() {
                for &p in &cfg.preds[b] {
                    if body.insert(p) {
                        work.push(p);
                    }
                }
            }
            let body: Vec<usize> = (0..n).filter(|&b| body.contains(b)).collect();
            let latch = latches.iter().copied().max().expect("at least one latch");
            classify(cfg, instrs, head, latch, body)
        })
        .collect()
}

fn body_pcs<'a>(cfg: &'a Cfg, body: &'a [usize]) -> impl Iterator<Item = usize> + 'a {
    body.iter().flat_map(move |&b| cfg.blocks[b].start..cfg.blocks[b].end)
}

fn classify(cfg: &Cfg, instrs: &[Instr], head: usize, latch: usize, body: Vec<usize>) -> LoopInfo {
    let head_pc = cfg.blocks[head].start;
    let latch_pc = cfg.blocks[latch].end - 1;

    // Per-register definition counts inside the body.
    let mut defs = [0usize; 16];
    let mut stores = 0usize;
    for pc in body_pcs(cfg, &body) {
        if let Some(rd) = instrs[pc].dst() {
            defs[rd.index()] += 1;
        }
        if instrs[pc].is_store() {
            stores += 1;
        }
    }

    // Striding induction: the register's only in-loop definition is
    // `r = r +/- imm` — exactly what Discovery's stride detector locks on.
    let mut induction: Option<(Reg, i64)> = None;
    for pc in body_pcs(cfg, &body) {
        if let Instr::AluImm { op, rd, ra, imm } = instrs[pc] {
            let step = match op {
                AluOp::Add => imm,
                AluOp::Sub => -imm,
                _ => continue,
            };
            if rd == ra && defs[rd.index()] == 1 && induction.is_none() {
                induction = Some((rd, step));
            }
        }
    }

    // cmp+branch idiom: the latch is a conditional backward branch to the
    // head, fed by a compare defined in the body.
    let mut cmp_pc = None;
    if let Instr::Branch { rs, target, .. } = instrs[latch_pc] {
        if target == head_pc {
            cmp_pc = body_pcs(cfg, &body)
                .filter(|&pc| instrs[pc].is_compare() && instrs[pc].dst() == Some(rs))
                .last();
        }
    }

    // Loads addressed through the induction register stride; values chained
    // off them taint further loads (the Vector Taint Tracker, statically).
    let mut striding_loads = Vec::new();
    let mut taint: u16 = 0;
    if let Some((ind, _)) = induction {
        for pc in body_pcs(cfg, &body) {
            if let Instr::Load { rd, addr, .. } = instrs[pc] {
                if addr.regs().any(|r| r == ind) {
                    striding_loads.push(pc);
                    taint |= rd.bit();
                }
            }
        }
    }
    let mut dependent_loads = Vec::new();
    if taint != 0 {
        loop {
            let mut changed = false;
            for pc in body_pcs(cfg, &body) {
                let tainted_src = match instrs[pc] {
                    Instr::Alu { ra, rb, .. } => taint & (ra.bit() | rb.bit()) != 0,
                    Instr::AluImm { ra, .. } => taint & ra.bit() != 0,
                    Instr::Load { addr, .. } => addr.regs().any(|r| taint & r.bit() != 0),
                    _ => false,
                };
                if tainted_src {
                    if let Some(rd) = instrs[pc].dst() {
                        if taint & rd.bit() == 0 {
                            taint |= rd.bit();
                            changed = true;
                        }
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for pc in body_pcs(cfg, &body) {
            if let Instr::Load { addr, .. } = instrs[pc] {
                if addr.regs().any(|r| taint & r.bit() != 0) && !striding_loads.contains(&pc) {
                    dependent_loads.push(pc);
                }
            }
        }
    }

    // An exit is any body-block edge that leaves the loop or the program.
    let has_exit = body
        .iter()
        .any(|&b| cfg.blocks[b].exits || cfg.blocks[b].succs.iter().any(|s| !body.contains(s)));

    let class = if cmp_pc.is_none() {
        LoopClass::IrregularControl
    } else if induction.is_none() {
        LoopClass::NoInduction
    } else if !dependent_loads.is_empty() {
        LoopClass::VectorizableChain
    } else if !striding_loads.is_empty() {
        LoopClass::VectorizableStride
    } else {
        LoopClass::CounterOnly
    };

    LoopInfo {
        head_pc,
        latch_pc,
        body,
        induction,
        cmp_pc,
        striding_loads,
        dependent_loads,
        stores,
        has_exit,
        class,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::parse_program;

    fn loops_of(text: &str) -> Vec<LoopInfo> {
        let p = parse_program(text).unwrap();
        let cfg = Cfg::build(p.instrs());
        find_loops(&cfg, p.instrs())
    }

    #[test]
    fn stride_loop_classifies_as_stride() {
        let l = loops_of(
            "li r1, 4096\nli r2, 0\nli r3, 8\ntop:\nld8 r5, [r1 + r2<<3 + 0]\n\
             addi r2, r2, 1\nslt r6, r2, r3\nbnz r6, top\nhalt",
        );
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].induction.map(|(r, s)| (r.index(), s)), Some((2, 1)));
        assert!(l[0].cmp_pc.is_some());
        assert_eq!(l[0].striding_loads.len(), 1);
        assert_eq!(l[0].class, LoopClass::VectorizableStride);
        assert!(l[0].has_exit);
    }

    #[test]
    fn indirect_chain_classifies_as_chain() {
        // val = data[idx[i]] — the a[b[i]] idiom DVR targets.
        let l = loops_of(
            "li r1, 4096\nli r2, 8192\nli r3, 0\nli r4, 100\ntop:\n\
             ld8 r5, [r1 + r3<<3 + 0]\nld8 r6, [r2 + r5<<3 + 0]\n\
             addi r3, r3, 1\nslt r7, r3, r4\nbnz r7, top\nhalt",
        );
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].class, LoopClass::VectorizableChain);
        assert_eq!(l[0].striding_loads.len(), 1);
        assert_eq!(l[0].dependent_loads.len(), 1);
    }

    #[test]
    fn pointer_chase_is_irregular() {
        // while (p) p = *p; — no compare feeds the branch.
        let l = loops_of("li r1, 4096\ntop:\nld8 r1, [r1 + 0]\nbnz r1, top\nhalt");
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].class, LoopClass::IrregularControl);
    }

    #[test]
    fn counter_loop_is_counter_only() {
        let l = loops_of("li r1, 0\ntop:\naddi r1, r1, 1\nslt r2, r1, r1\nbnz r2, top\nhalt");
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].class, LoopClass::CounterOnly);
    }

    #[test]
    fn dead_loop_has_no_exit() {
        let l = loops_of("top:\njmp top");
        assert_eq!(l.len(), 1);
        assert!(!l[0].has_exit);
        assert_eq!(l[0].stores, 0);
    }
}
