//! Typed diagnostics produced by the analyzer.

use std::fmt;

use sim_isa::Program;

use crate::loops::LoopInfo;

/// How serious a finding is.
///
/// Only [`Severity::Error`] findings make a program "fail" the lint:
/// registers are architecturally zero-initialized and unreachable code is
/// legal, so those are warnings, while a branch outside the program or a
/// loop with no exit path can never be correct.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Suspicious but well-defined; the program still runs.
    Warning,
    /// The program is malformed or can never terminate.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The kind of defect a diagnostic reports.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum LintKind {
    /// A register is read on some path before any instruction writes it.
    UninitRead,
    /// A basic block no path from the entry can reach.
    UnreachableBlock,
    /// A branch or jump target past the end of the program (`== len` is a
    /// legal fall-off-the-end halt; `> len` is not).
    BadBranchTarget,
    /// A control-flow loop with no exit edge — the program can never halt.
    InfiniteLoop,
}

impl LintKind {
    /// The default severity for this kind of finding.
    pub fn severity(self) -> Severity {
        match self {
            LintKind::UninitRead | LintKind::UnreachableBlock => Severity::Warning,
            LintKind::BadBranchTarget | LintKind::InfiniteLoop => Severity::Error,
        }
    }

    /// Stable kebab-case name used in rendered diagnostics.
    pub fn name(self) -> &'static str {
        match self {
            LintKind::UninitRead => "uninit-read",
            LintKind::UnreachableBlock => "unreachable-block",
            LintKind::BadBranchTarget => "bad-branch-target",
            LintKind::InfiniteLoop => "infinite-loop",
        }
    }
}

/// One finding, anchored to the program counter of the offending
/// instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// What kind of defect this is.
    pub kind: LintKind,
    /// How serious it is (see [`LintKind::severity`]).
    pub severity: Severity,
    /// Program counter (instruction index) of the offending instruction.
    pub pc: usize,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    pub(crate) fn new(kind: LintKind, pc: usize, message: String) -> Self {
        Diagnostic { kind, severity: kind.severity(), pc, message }
    }

    /// Renders the diagnostic, pointing at the workload source line when the
    /// program was parsed from text (satellite of the assembler-diagnostics
    /// work: `Program::source_line`).
    pub fn render(&self, prog: Option<&Program>) -> String {
        let loc = match prog.and_then(|p| p.source_line(self.pc)) {
            Some(line) => format!("pc {} (line {})", self.pc, line),
            None => format!("pc {}", self.pc),
        };
        format!("{}[{}] {}: {}", self.severity, self.kind.name(), loc, self.message)
    }
}

/// Everything the analyzer found for one program.
#[derive(Clone, Debug, Default)]
pub struct LintReport {
    /// All findings, sorted by program counter then kind.
    pub diags: Vec<Diagnostic>,
    /// Natural loops with their Discovery-Mode conformance classification,
    /// sorted by loop-head program counter.
    pub loops: Vec<LoopInfo>,
}

impl LintReport {
    /// Number of error-severity findings.
    pub fn errors(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity findings.
    pub fn warnings(&self) -> usize {
        self.diags.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Whether the program is free of error-severity findings.
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }

    /// Serializes the report as one flat JSON object (for `dvrsim lint
    /// --json`). Hand-rolled to keep the analyzer dependency-free.
    pub fn to_json(&self, name: &str, prog: Option<&Program>) -> String {
        use std::fmt::Write;
        let escape = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
        let mut out = format!(
            "{{\"program\":\"{}\",\"errors\":{},\"warnings\":{},\"diags\":[",
            escape(name),
            self.errors(),
            self.warnings()
        );
        for (i, d) in self.diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let line = prog
                .and_then(|p| p.source_line(d.pc))
                .map(|l| l.to_string())
                .unwrap_or_else(|| "null".to_string());
            let _ = write!(
                out,
                "{{\"kind\":\"{}\",\"severity\":\"{}\",\"pc\":{},\"line\":{},\"message\":\"{}\"}}",
                d.kind.name(),
                d.severity,
                d.pc,
                line,
                escape(&d.message)
            );
        }
        out.push_str("],\"loops\":[");
        for (i, l) in self.loops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                concat!(
                    "{{\"head_pc\":{},\"latch_pc\":{},\"class\":\"{}\",",
                    "\"striding_loads\":{:?},\"dependent_loads\":{:?},\"stores\":{}}}"
                ),
                l.head_pc, l.latch_pc, l.class, l.striding_loads, l.dependent_loads, l.stores
            );
        }
        out.push_str("]}");
        out
    }
}
