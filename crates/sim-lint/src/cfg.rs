//! Control-flow graph construction over a static instruction sequence.
//!
//! Program counters are instruction indices; a basic block is a maximal
//! half-open pc range `[start, end)` entered only at `start` and left only
//! at `end - 1`. Falling off the end of the program (`pc == len`) is the
//! ISA's clean-halt convention and is modelled as an edge to a virtual exit,
//! not as a block.

use sim_isa::Instr;

/// A basic block: the half-open pc range `[start, end)`.
#[derive(Clone, Debug)]
pub struct Block {
    /// First pc of the block.
    pub start: usize,
    /// One past the last pc of the block.
    pub end: usize,
    /// Successor block indices (deduplicated, ascending).
    pub succs: Vec<usize>,
    /// Whether the block can leave the program (halt, fall off the end, or
    /// jump to `pc == len`).
    pub exits: bool,
}

/// A control-flow graph: the program partitioned into basic blocks.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// Blocks in ascending pc order; block 0 (when present) is the entry.
    pub blocks: Vec<Block>,
    /// Predecessor block indices per block (deduplicated, ascending).
    pub preds: Vec<Vec<usize>>,
    block_of: Vec<usize>,
}

impl Cfg {
    /// Partitions `instrs` into basic blocks and wires the edges.
    ///
    /// Targets past `instrs.len()` produce no edge — the analyzer reports
    /// them as [`BadBranchTarget`](crate::LintKind::BadBranchTarget)
    /// separately.
    pub fn build(instrs: &[Instr]) -> Cfg {
        let len = instrs.len();
        if len == 0 {
            return Cfg { blocks: Vec::new(), preds: Vec::new(), block_of: Vec::new() };
        }

        // Leaders: entry, every in-range control target, and every
        // instruction after a control transfer or halt.
        let mut leader = vec![false; len];
        leader[0] = true;
        for (pc, instr) in instrs.iter().enumerate() {
            if instr.is_control() || matches!(instr, Instr::Halt) {
                if let Some(t) = instr.target() {
                    if t < len {
                        leader[t] = true;
                    }
                }
                if pc + 1 < len {
                    leader[pc + 1] = true;
                }
            }
        }

        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; len];
        for pc in 0..len {
            if leader[pc] {
                blocks.push(Block { start: pc, end: pc, succs: Vec::new(), exits: false });
            }
            block_of[pc] = blocks.len() - 1;
            let b = blocks.last_mut().expect("pc 0 is a leader");
            b.end = pc + 1;
        }

        let n = blocks.len();
        let mut preds = vec![Vec::new(); n];
        for (bi, block) in blocks.iter_mut().enumerate() {
            let last_pc = block.end - 1;
            let mut succs = Vec::new();
            let mut exits = false;
            let mut edge = |pc: usize| {
                if pc < len {
                    succs.push(block_of[pc]);
                } else if pc == len {
                    exits = true;
                }
                // pc > len: malformed target, no edge.
            };
            match instrs[last_pc] {
                Instr::Halt => exits = true,
                Instr::Jump { target } => edge(target),
                Instr::Branch { target, .. } => {
                    edge(target);
                    edge(last_pc + 1);
                }
                _ => edge(last_pc + 1),
            }
            succs.sort_unstable();
            succs.dedup();
            for &s in &succs {
                preds[s].push(bi);
            }
            block.succs = succs;
            block.exits = exits;
        }
        for p in &mut preds {
            p.sort_unstable();
            p.dedup();
        }

        Cfg { blocks, preds, block_of }
    }

    /// Index of the block containing `pc`.
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks (empty program).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::parse_program;

    #[test]
    fn straight_line_is_one_block() {
        let p = parse_program("nop\nnop\nhalt").unwrap();
        let cfg = Cfg::build(p.instrs());
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.blocks[0].start, 0);
        assert_eq!(cfg.blocks[0].end, 3);
        assert!(cfg.blocks[0].exits);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn loop_splits_blocks() {
        let p = parse_program("li r1, 3\ntop:\naddi r1, r1, -1\nbnz r1, top\nhalt").unwrap();
        let cfg = Cfg::build(p.instrs());
        // [li] [addi, bnz] [halt]
        assert_eq!(cfg.len(), 3);
        assert_eq!(cfg.blocks[1].succs, vec![1, 2]);
        assert_eq!(cfg.preds[1], vec![0, 1]);
        assert!(cfg.blocks[2].exits);
    }

    #[test]
    fn fall_off_the_end_is_an_exit() {
        let p = parse_program("bnz r1, @2\nnop").unwrap();
        let cfg = Cfg::build(p.instrs());
        assert_eq!(cfg.len(), 2);
        assert!(cfg.blocks[0].exits); // branch to pc 2 == len
        assert!(cfg.blocks[1].exits); // falls off the end
    }
}
