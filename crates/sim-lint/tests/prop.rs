//! Property tests tying the static address classifier to the functional
//! executor: on randomized straight-line loop bodies, every access the
//! analyzer calls `Affine {stride}` must produce exactly that per-iteration
//! address delta when the program actually runs, pointer-chase chains must
//! carry the constructed depth, and an inferred trip count must match the
//! observed iteration count.

use proptest::prelude::*;
use sim_isa::{Cpu, Instr, MemAddr, MemWidth, Reg, SparseMemory, StepEvent, NUM_REGS};
use sim_lint::{analyze_addresses, analyze_intervals, find_loops, AddrClass, Cfg, DefUseGraph};

const A_BASE: i64 = 0x10_000;
const B_BASE: i64 = 0x40_000;

/// One randomized memory op in the loop body.
#[derive(Clone, Copy, Debug)]
enum OpSpec {
    /// `ld rd, [A + iv<<scale + off]` — affine with stride `step << scale`.
    AffineLoad { scale: u8, off: i64 },
    /// `st rd_prev, [A + iv<<scale + off]` — affine store.
    AffineStore { scale: u8, off: i64 },
    /// `ld rd, [B + prev<<scale]` where `prev` is the previous op's
    /// destination — pointer chase one deeper than its feeder.
    ChaseLoad { scale: u8 },
}

fn arb_op() -> impl Strategy<Value = OpSpec> {
    let off = (-8i64..8).prop_map(|k| k * 8);
    prop_oneof![
        (0u8..4, off.clone()).prop_map(|(scale, off)| OpSpec::AffineLoad { scale, off }),
        (0u8..4, off).prop_map(|(scale, off)| OpSpec::AffineStore { scale, off }),
        (0u8..4).prop_map(|scale| OpSpec::ChaseLoad { scale }),
    ]
}

/// Destination register pool for body ops (bases/iv/bound/cond use R1-R5).
const DSTS: [Reg; 6] = [Reg::R6, Reg::R7, Reg::R8, Reg::R9, Reg::R10, Reg::R11];

/// What each generated op should statically classify as.
#[derive(Clone, Copy, Debug, PartialEq)]
enum Expect {
    Affine { stride: i64 },
    Chase { depth: usize },
}

/// Assembles the loop and returns `(program, per-op (pc, expectation))`.
fn build(ops: &[OpSpec], step: i64, trips: i64) -> (sim_isa::Program, Vec<(usize, Expect)>) {
    let (ra, rb, ri, rn, rc) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
    let mut asm = sim_isa::Asm::new();
    asm.li(ra, A_BASE);
    asm.li(rb, B_BASE);
    asm.li(ri, 0);
    asm.li(rn, trips * step);
    let top = asm.here();
    let mut expects = Vec::new();
    // Depth of the value in the previous op's destination register:
    // 0 = nothing loaded yet this body, n = n loads on its chain.
    let mut prev: Option<(Reg, usize)> = None;
    for (k, op) in ops.iter().enumerate() {
        let rd = DSTS[k];
        let pc = asm.pc();
        match *op {
            OpSpec::AffineLoad { scale, off } => {
                asm.emit(Instr::Load {
                    rd,
                    addr: MemAddr { base: ra, index: Some(ri), scale, offset: off },
                    width: MemWidth::B8,
                });
                expects.push((pc, Expect::Affine { stride: step << scale }));
                prev = Some((rd, 1));
            }
            OpSpec::AffineStore { scale, off } => {
                let rs = prev.map(|(r, _)| r).unwrap_or(rn);
                asm.emit(Instr::Store {
                    rs,
                    addr: MemAddr { base: ra, index: Some(ri), scale, offset: off },
                    width: MemWidth::B8,
                });
                expects.push((pc, Expect::Affine { stride: step << scale }));
                // A store writes no register; `prev` is unchanged.
            }
            OpSpec::ChaseLoad { scale } => match prev {
                Some((feeder, depth)) => {
                    asm.emit(Instr::Load {
                        rd,
                        addr: MemAddr { base: rb, index: Some(feeder), scale, offset: 0 },
                        width: MemWidth::B8,
                    });
                    expects.push((pc, Expect::Chase { depth }));
                    prev = Some((rd, depth + 1));
                }
                None => {
                    // No feeder yet: degrade to an affine load.
                    asm.emit(Instr::Load {
                        rd,
                        addr: MemAddr { base: ra, index: Some(ri), scale, offset: 0 },
                        width: MemWidth::B8,
                    });
                    expects.push((pc, Expect::Affine { stride: step << scale }));
                    prev = Some((rd, 1));
                }
            },
        }
    }
    asm.addi(ri, ri, step);
    asm.slt(rc, ri, rn);
    asm.bnz(rc, top);
    asm.halt();
    (asm.finish().unwrap(), expects)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Static `Affine {stride}` accesses stride exactly that much per
    /// iteration when executed; constructed chase chains keep their depth;
    /// an inferred trip count matches the executed iteration count.
    #[test]
    fn classification_agrees_with_executed_address_stream(
        ops in prop::collection::vec(arb_op(), 1..=6),
        step in 1i64..4,
        trips in 2i64..12,
        data in prop::collection::vec(0u64..512, 128),
    ) {
        let (prog, expects) = build(&ops, step, trips);
        let instrs = prog.instrs();

        // Static side.
        let cfg = Cfg::build(instrs);
        let dfg = DefUseGraph::build(&cfg, instrs);
        let loops = find_loops(&cfg, instrs);
        prop_assert_eq!(loops.len(), 1);
        let addr = analyze_addresses(&cfg, instrs, &dfg, &loops);
        for &(pc, want) in &expects {
            let m = addr.mem_op_at(pc).expect("every generated op is a mem op");
            prop_assert_eq!(m.loop_idx, Some(0));
            match want {
                Expect::Affine { stride } => {
                    prop_assert_eq!(m.class, AddrClass::Affine { stride }, "pc {}", pc);
                }
                Expect::Chase { depth } => {
                    prop_assert_eq!(m.class, AddrClass::PointerChase { depth }, "pc {}", pc);
                }
            }
        }

        // Dynamic side: step the functional executor, collecting the
        // per-pc effective-address stream.
        let mut mem = SparseMemory::new();
        mem.write_u64_slice(A_BASE as u64, &data);
        let mut streams: Vec<Vec<u64>> = vec![Vec::new(); instrs.len()];
        let mut iters = 0u64;
        let mut cpu = Cpu::new();
        for _ in 0..100_000 {
            match cpu.step(&prog, &mut mem).unwrap() {
                StepEvent::Executed(s) => {
                    if let Some(a) = s.mem {
                        streams[s.pc].push(a.addr);
                    }
                    if matches!(s.instr, Instr::AluImm { .. }) && s.pc >= 4 {
                        iters += 1; // the single `addi` latch counts iterations
                    }
                }
                StepEvent::Halted => break,
            }
        }
        prop_assert!(cpu.is_halted(), "loop must terminate");
        prop_assert_eq!(iters, trips as u64);

        // Affine classification is a promise about the executed stream.
        for m in &addr.mem_ops {
            if let AddrClass::Affine { stride } = m.class {
                let st = &streams[m.pc];
                prop_assert_eq!(st.len() as u64, trips as u64);
                for w in st.windows(2) {
                    prop_assert_eq!(
                        w[1].wrapping_sub(w[0]) as i64, stride,
                        "pc {}: observed delta disagrees with static stride", m.pc
                    );
                }
            }
        }

        // The value-range walk may give up, but must never be wrong.
        if let Some(t) = addr.loop_addr[0].trip_count {
            prop_assert_eq!(t, trips as u64);
        }
    }

    /// Interval soundness: the abstract interpreter's per-pc register
    /// intervals, effective-address intervals, and defined-value intervals
    /// must over-approximate every concrete execution. Widening may lose
    /// precision (up to `[0, 2^64)`) but can never exclude a value the
    /// machine actually produces.
    #[test]
    fn intervals_over_approximate_every_concrete_execution(
        ops in prop::collection::vec(arb_op(), 1..=6),
        step in 1i64..4,
        trips in 2i64..12,
        data in prop::collection::vec(0u64..512, 128),
    ) {
        let (prog, _) = build(&ops, step, trips);
        let absint = analyze_intervals(&prog, None);

        let mut mem = SparseMemory::new();
        mem.write_u64_slice(A_BASE as u64, &data);
        let mut cpu = Cpu::new();
        for _ in 0..100_000 {
            // The abstract file must hold *before* the pc executes.
            let pc = cpu.pc();
            let regs = cpu.regs();
            match cpu.step(&prog, &mut mem).unwrap() {
                StepEvent::Executed(s) => {
                    let st = absint
                        .entry_state(pc)
                        .expect("executed pc must be statically reachable");
                    for i in 0..NUM_REGS {
                        prop_assert!(
                            st[i].contains(regs[i]),
                            "pc {pc}: r{i}={:#x} outside inferred {}", regs[i], st[i]
                        );
                    }
                    if let Some(a) = s.mem {
                        let iv = absint
                            .addr_interval(pc)
                            .expect("executed mem op must carry an address interval");
                        prop_assert!(
                            iv.contains(a.addr),
                            "pc {pc}: address {:#x} outside inferred {iv}", a.addr
                        );
                    }
                    if let (Some(v), Some(iv)) = (s.dst_value, absint.def_interval(pc)) {
                        prop_assert!(
                            iv.contains(v),
                            "pc {pc}: defined value {v:#x} outside inferred {iv}"
                        );
                    }
                }
                StepEvent::Halted => break,
            }
        }
        prop_assert!(cpu.is_halted(), "loop must terminate");
    }
}
