//! Core configuration (paper Table 1 defaults).

/// Configuration of the out-of-order core's pipeline resources.
///
/// Defaults reproduce the paper's Table 1 baseline: a 4 GHz, 5-wide
/// out-of-order core inspired by Intel Ice Lake, with a 350-entry ROB.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CoreConfig {
    /// Fetch/dispatch/rename/commit width.
    pub width: u32,
    /// Maximum instructions issued to execution per cycle (FU-port bound).
    pub issue_width: u32,
    /// Reorder-buffer entries.
    pub rob_size: usize,
    /// Issue-queue entries (instructions eligible for wakeup/select).
    pub iq_size: usize,
    /// Load-queue entries.
    pub lq_size: usize,
    /// Store-queue entries.
    pub sq_size: usize,
    /// Front-end refill penalty after a branch misprediction, in cycles
    /// (15 front-end stages).
    pub frontend_penalty: u64,
    /// Decoded micro-op (front-end) buffer entries.
    pub fetch_queue: usize,
    /// Simple integer ALUs (1-cycle ops, branches, address generation).
    pub int_alu: u32,
    /// Integer multipliers (3-cycle).
    pub int_mul: u32,
    /// Integer dividers (18-cycle).
    pub int_div: u32,
    /// L1-D load ports.
    pub load_ports: u32,
    /// L1-D store ports.
    pub store_ports: u32,
    /// Whether the always-on L1-D stride prefetcher is enabled.
    pub stride_prefetcher: bool,
    /// Whether the IMP indirect prefetcher is enabled.
    pub imp_prefetcher: bool,
    /// Forward-progress watchdog: if no instruction commits for this many
    /// cycles the run fails with [`SimError::Deadlock`](crate::SimError)
    /// and a diagnostic snapshot. `0` disables the watchdog.
    pub watchdog_cycles: u64,
    /// Hard cycle budget: the run fails with
    /// [`SimError::CycleBudgetExceeded`](crate::SimError) past this many
    /// cycles. `0` = unlimited.
    pub max_cycles: u64,
    /// Wall-clock budget in host milliseconds (checked coarsely, every
    /// 64 Ki cycles). `0` = unlimited.
    pub max_wall_ms: u64,
    /// Architectural-memory footprint cap in bytes. `0` = unlimited.
    pub mem_cap_bytes: u64,
    /// Run the cycle-model invariant sanitizer: read-only structural checks
    /// over the ROB/rename/LSQ each cycle plus amortized MSHR/cache sweeps,
    /// reported through [`OooCore::sanitize_report`](crate::OooCore).
    /// Checks are side-effect-free, so enabling this never changes timing.
    pub sanitize: bool,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            width: 5,
            issue_width: 8,
            rob_size: 350,
            iq_size: 128,
            lq_size: 128,
            sq_size: 72,
            frontend_penalty: 15,
            fetch_queue: 8,
            int_alu: 4,
            int_mul: 1,
            int_div: 1,
            load_ports: 2,
            store_ports: 1,
            stride_prefetcher: true,
            imp_prefetcher: false,
            watchdog_cycles: 2_000_000,
            max_cycles: 0,
            max_wall_ms: 0,
            mem_cap_bytes: 0,
            sanitize: false,
        }
    }
}

impl CoreConfig {
    /// The Table 1 baseline (alias of `Default`).
    pub fn icelake_like() -> Self {
        CoreConfig::default()
    }

    /// The baseline with a different ROB size (Figures 2 and 12 sweeps).
    pub fn with_rob(rob_size: usize) -> Self {
        CoreConfig { rob_size, ..CoreConfig::default() }
    }

    /// Scales the back-end queues proportionally to a new ROB size, as in
    /// the paper's Section 6.5 scaled-back-end experiment.
    pub fn with_scaled_backend(rob_size: usize) -> Self {
        let scale = rob_size as f64 / 350.0;
        let s = |v: usize| ((v as f64 * scale).round() as usize).max(8);
        CoreConfig {
            rob_size,
            iq_size: s(128),
            lq_size: s(128),
            sq_size: s(72),
            ..CoreConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = CoreConfig::default();
        assert_eq!(c.width, 5);
        assert_eq!(c.rob_size, 350);
        assert_eq!(c.iq_size, 128);
        assert_eq!(c.lq_size, 128);
        assert_eq!(c.sq_size, 72);
        assert_eq!(c.frontend_penalty, 15);
        assert_eq!(c.int_alu, 4);
        assert!(c.stride_prefetcher);
        assert_eq!(c.watchdog_cycles, 2_000_000);
        assert_eq!(c.max_cycles, 0);
        assert_eq!(c.max_wall_ms, 0);
        assert_eq!(c.mem_cap_bytes, 0);
    }

    #[test]
    fn scaled_backend_scales_queues() {
        let c = CoreConfig::with_scaled_backend(128);
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.iq_size, 47);
        assert_eq!(c.sq_size, 26);
        let big = CoreConfig::with_scaled_backend(512);
        assert_eq!(big.iq_size, 187);
    }
}
