//! # sim-ooo — the cycle-level out-of-order core of the DVR simulator
//!
//! A 5-wide, 350-entry-ROB out-of-order core modelled after the paper's
//! Table 1 baseline (Ice-Lake-inspired), driven execution-first: the
//! functional [`sim_isa::Cpu`] executes the correct path at the fetch
//! frontier while this crate layers timing on top — register-dependency
//! wakeup, ROB/IQ/LSQ capacity, functional-unit contention, L1-D ports,
//! TAGE branch prediction with front-end redirect penalties, and memory
//! latencies through [`sim_mem::MemoryHierarchy`].
//!
//! Runahead techniques attach through the [`RunaheadEngine`] trait (see
//! `dvr-core`), which is invoked at the paper's architecturally meaningful
//! points: every dispatch (DVR's stride trigger and Discovery Mode), every
//! full-ROB stall with a pending load at the head (PRE/VR trigger), and
//! every demand-load issue (the Oracle).
//!
//! See [`OooCore`] for a runnable example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch;
mod config;
mod core;
mod engine;
mod error;
mod loop_pred;
mod sanitize;
mod stats;

pub use branch::{TageConfig, TagePredictor, TAGE_STATE_MAGIC};
pub use config::CoreConfig;
pub use core::{DynInst, OooCore, Step, StepSession};
pub use engine::{ArchSnapshot, EngineCtx, NullEngine, RunaheadEngine};
pub use error::{DeadlockSnapshot, SimError};
pub use loop_pred::LoopPredictor;
pub use sanitize::SanitizeReport;
pub use stats::CoreStats;
