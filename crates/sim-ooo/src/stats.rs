//! Core-level statistics.

/// Counters accumulated by [`OooCore`](crate::OooCore) over a run.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CoreStats {
    /// Cycles simulated.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Cycles in which dispatch was blocked by a full ROB (the paper's
    /// "processor stall time due to a full ROB", Figure 2's right axis).
    pub rob_full_stall_cycles: u64,
    /// Distinct full-ROB stall episodes with a load miss at the ROB head
    /// (runahead trigger opportunities).
    pub full_rob_stall_events: u64,
    /// Cycles in which commit was ready but blocked by the engine
    /// (VR's delayed termination, Section 3 observation 2).
    pub commit_blocked_engine_cycles: u64,
    /// Conditional branches committed.
    pub cond_branches: u64,
    /// Conditional branch direction mispredictions.
    pub branch_mispredicts: u64,
    /// Demand loads executed.
    pub loads: u64,
    /// Demand stores executed.
    pub stores: u64,
    /// Loads that forwarded from an in-flight store.
    pub store_forwards: u64,
}

impl CoreStats {
    /// Length of the [`CoreStats::to_flat`] encoding.
    pub const FLAT_LEN: usize = 10;

    /// Flattens the counters into a fixed-order array — the wire format of
    /// the sample-worker protocol.
    pub fn to_flat(&self) -> [u64; Self::FLAT_LEN] {
        [
            self.cycles,
            self.committed,
            self.rob_full_stall_cycles,
            self.full_rob_stall_events,
            self.commit_blocked_engine_cycles,
            self.cond_branches,
            self.branch_mispredicts,
            self.loads,
            self.stores,
            self.store_forwards,
        ]
    }

    /// Rebuilds from a [`CoreStats::to_flat`] array; `None` if the length
    /// is wrong.
    pub fn from_flat(v: &[u64]) -> Option<Self> {
        let v: &[u64; Self::FLAT_LEN] = v.try_into().ok()?;
        Some(CoreStats {
            cycles: v[0],
            committed: v[1],
            rob_full_stall_cycles: v[2],
            full_rob_stall_events: v[3],
            commit_blocked_engine_cycles: v[4],
            cond_branches: v[5],
            branch_mispredicts: v[6],
            loads: v[7],
            stores: v[8],
            store_forwards: v[9],
        })
    }

    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.committed as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles spent dispatch-stalled on a full ROB.
    pub fn rob_full_stall_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.rob_full_stall_cycles as f64 / self.cycles as f64
        }
    }

    /// Branch mispredictions per kilo-instruction.
    pub fn mpki(&self) -> f64 {
        if self.committed == 0 {
            0.0
        } else {
            1000.0 * self.branch_mispredicts as f64 / self.committed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_rates() {
        let s = CoreStats {
            cycles: 1000,
            committed: 2500,
            rob_full_stall_cycles: 250,
            branch_mispredicts: 5,
            ..CoreStats::default()
        };
        assert!((s.ipc() - 2.5).abs() < 1e-12);
        assert!((s.rob_full_stall_fraction() - 0.25).abs() < 1e-12);
        assert!((s.mpki() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let s = CoreStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.rob_full_stall_fraction(), 0.0);
        assert_eq!(s.mpki(), 0.0);
    }
}
