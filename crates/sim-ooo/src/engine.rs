//! The runahead-engine interface: how prefetching techniques plug into the
//! core.
//!
//! The timing core calls the active [`RunaheadEngine`] at three
//! architecturally meaningful points:
//!
//! * **every dispatched instruction** — DVR's stride detector and Discovery
//!   Mode observe the main thread's dynamic stream here (paper Section 4.1);
//! * **a full-ROB stall with a pending load at the head** — the classic
//!   runahead trigger used by PRE and VR (Sections 2.1, 2.3);
//! * **every demand load issue** — the Oracle overrides observed latency
//!   here.
//!
//! Engines receive an [`EngineCtx`] giving them the static program, the
//! frontier architectural state, the functional memory image (read-only:
//! runahead is transient), and mutable access to the shared memory
//! hierarchy — the same L1-D, MSHRs, and DRAM the main thread uses, which is
//! what makes interference and contention structural rather than modelled.

use sim_isa::{Cpu, Program, SparseMemory, NUM_REGS};
use sim_mem::MemoryHierarchy;

use crate::core::DynInst;

/// A copy of the architectural register file and PC at the fetch frontier.
#[derive(Clone, Copy, Debug)]
pub struct ArchSnapshot {
    /// Register values.
    pub regs: [u64; NUM_REGS],
    /// Program counter.
    pub pc: usize,
}

impl ArchSnapshot {
    /// Captures the state of a functional CPU.
    pub fn of(cpu: &Cpu) -> Self {
        ArchSnapshot { regs: cpu.regs(), pc: cpu.pc() }
    }
}

/// Everything an engine may touch when invoked by the core.
pub struct EngineCtx<'a> {
    /// Current cycle.
    pub cycle: u64,
    /// The static program (engines walk instruction slices through it).
    pub prog: &'a Program,
    /// Architectural state at the fetch frontier.
    pub frontier: ArchSnapshot,
    /// The live functional memory image (read-only: runahead must not
    /// perturb architectural state).
    pub mem: &'a SparseMemory,
    /// The shared memory hierarchy (runahead loads contend for the same
    /// MSHRs and DRAM bandwidth as the main thread).
    pub hier: &'a mut MemoryHierarchy,
}

/// A prefetching/runahead technique attached to the core.
///
/// All hooks have no-op defaults so a technique only implements the trigger
/// points it uses. The baseline core uses [`NullEngine`].
pub trait RunaheadEngine {
    /// Short technique name (for reports).
    fn name(&self) -> &'static str;

    /// Called for every instruction the main thread dispatches, in program
    /// order.
    fn on_dispatch(&mut self, ctx: &mut EngineCtx<'_>, di: &DynInst) {
        let _ = (ctx, di);
    }

    /// Called when dispatch is blocked by a full ROB whose head is a load
    /// still waiting on memory (`head_complete_at` is its fill time). Fired
    /// once per stall episode.
    ///
    /// Returns the cycle until which *commit* must additionally stay
    /// blocked. Returning `ctx.cycle` means "no extra blocking"; VR's
    /// delayed termination returns the end of its vectorized chain.
    fn on_full_rob_stall(&mut self, ctx: &mut EngineCtx<'_>, head_complete_at: u64) -> u64 {
        let _ = head_complete_at;
        ctx.cycle
    }

    /// Called as each demand load issues. Returning `Some(latency)` makes
    /// the core use `cycle + latency` as the load's completion instead of
    /// querying the hierarchy (the engine is then responsible for hierarchy
    /// accounting). Used by the Oracle.
    fn override_load(&mut self, ctx: &mut EngineCtx<'_>, addr: u64) -> Option<u64> {
        let _ = (ctx, addr);
        None
    }
}

/// The do-nothing engine: the plain out-of-order baseline.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullEngine;

impl RunaheadEngine for NullEngine {
    fn name(&self) -> &'static str {
        "ooo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_captures_cpu() {
        let mut cpu = Cpu::new();
        cpu.set_reg(sim_isa::Reg::R3, 99);
        let s = ArchSnapshot::of(&cpu);
        assert_eq!(s.regs[3], 99);
        assert_eq!(s.pc, 0);
    }

    #[test]
    fn null_engine_defaults() {
        let mut e = NullEngine;
        assert_eq!(e.name(), "ooo");
        let prog = sim_isa::Asm::new().finish().unwrap();
        let mem = SparseMemory::new();
        let mut hier = MemoryHierarchy::new(sim_mem::HierarchyConfig::default());
        let cpu = Cpu::new();
        let mut ctx = EngineCtx {
            cycle: 7,
            prog: &prog,
            frontier: ArchSnapshot::of(&cpu),
            mem: &mem,
            hier: &mut hier,
        };
        assert_eq!(e.on_full_rob_stall(&mut ctx, 100), 7);
        assert_eq!(e.override_load(&mut ctx, 0x1000), None);
    }
}
