//! Typed simulation failures.
//!
//! Every way a timing run can go wrong is represented as data, so batch
//! harnesses can record a failed cell and keep sweeping instead of
//! aborting the process. See [`OooCore::run`](crate::OooCore::run).

use std::error::Error;
use std::fmt;

use sim_isa::ExecError;
use sim_mem::FaultEvent;

/// Pipeline state captured when the forward-progress watchdog fires.
///
/// The snapshot answers the first questions a deadlock triage asks: where
/// was the ROB head stuck, was the machine waiting on memory (MSHRs in
/// use, DRAM calendar depth) or starved of work (empty IQ/fetch queue)?
#[derive(Clone, PartialEq, Debug)]
pub struct DeadlockSnapshot {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Last cycle on which an instruction committed.
    pub last_commit_cycle: u64,
    /// Instructions committed before the wedge.
    pub committed: u64,
    /// ROB occupancy.
    pub rob_len: usize,
    /// Rendering of the ROB head instruction, if any.
    pub rob_head: Option<String>,
    /// Instructions sitting unissued in the issue queue.
    pub iq_unissued: usize,
    /// Fetch-queue occupancy.
    pub fetchq_len: usize,
    /// L1-D MSHRs in use at the firing cycle.
    pub mshrs_in_use: usize,
    /// Number of busy intervals in the DRAM slot calendar.
    pub dram_calendar_depth: usize,
}

impl fmt::Display for DeadlockSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no commit since cycle {} (now {}): {} committed, ROB {} entries (head: {}), \
             {} unissued in IQ, {} in fetch queue, {} MSHRs in use, DRAM calendar depth {}",
            self.last_commit_cycle,
            self.cycle,
            self.committed,
            self.rob_len,
            self.rob_head.as_deref().unwrap_or("empty"),
            self.iq_unissued,
            self.fetchq_len,
            self.mshrs_in_use,
            self.dram_calendar_depth,
        )
    }
}

/// Why a simulation run failed.
///
/// Carried from the executor and the memory hierarchy through
/// [`OooCore::run`](crate::OooCore::run) into the harness's per-cell
/// reports. [`SimError::kind`] gives a stable label for serialized output.
#[derive(Clone, PartialEq, Debug)]
pub enum SimError {
    /// The functional executor faulted (malformed program).
    ExecFault {
        /// PC at which the fault occurred.
        pc: usize,
        /// Cycle at which the fault surfaced.
        cycle: u64,
        /// The underlying executor error.
        source: ExecError,
    },
    /// The forward-progress watchdog fired: no instruction committed for
    /// [`CoreConfig::watchdog_cycles`](crate::CoreConfig::watchdog_cycles).
    Deadlock(Box<DeadlockSnapshot>),
    /// The run exceeded [`CoreConfig::max_cycles`](crate::CoreConfig::max_cycles).
    CycleBudgetExceeded {
        /// Cycle reached.
        cycle: u64,
        /// The configured budget.
        budget: u64,
    },
    /// The run exceeded [`CoreConfig::max_wall_ms`](crate::CoreConfig::max_wall_ms).
    WallClockExceeded {
        /// Elapsed host milliseconds.
        elapsed_ms: u64,
        /// The configured budget in milliseconds.
        budget_ms: u64,
    },
    /// Architectural memory grew past
    /// [`CoreConfig::mem_cap_bytes`](crate::CoreConfig::mem_cap_bytes).
    MemoryCapExceeded {
        /// Footprint in bytes when the cap tripped.
        bytes: u64,
        /// The configured cap in bytes.
        cap: u64,
    },
    /// A fatal injected fault (fault-injection harness) was delivered.
    InjectedFault(FaultEvent),
    /// [`OooCore::run`](crate::OooCore::run) was called on a core that
    /// already finished a program.
    CoreReused,
    /// A worker panicked while simulating this cell (caught by the batch
    /// harness, not raised by the core itself).
    Panic {
        /// The panic payload, if it was a string.
        message: String,
    },
}

impl SimError {
    /// Stable machine-readable label for serialized reports.
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::ExecFault { .. } => "exec_fault",
            SimError::Deadlock(_) => "deadlock",
            SimError::CycleBudgetExceeded { .. } => "cycle_budget_exceeded",
            SimError::WallClockExceeded { .. } => "wall_clock_exceeded",
            SimError::MemoryCapExceeded { .. } => "memory_cap_exceeded",
            SimError::InjectedFault(_) => "injected_fault",
            SimError::CoreReused => "core_reused",
            SimError::Panic { .. } => "panic",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::ExecFault { pc, cycle, source } => {
                write!(f, "functional execution fault at pc {pc}, cycle {cycle}: {source}")
            }
            SimError::Deadlock(snap) => write!(f, "pipeline deadlock: {snap}"),
            SimError::CycleBudgetExceeded { cycle, budget } => {
                write!(f, "cycle budget exceeded: {cycle} cycles (budget {budget})")
            }
            SimError::WallClockExceeded { elapsed_ms, budget_ms } => {
                write!(f, "wall-clock budget exceeded: {elapsed_ms} ms (budget {budget_ms} ms)")
            }
            SimError::MemoryCapExceeded { bytes, cap } => {
                write!(f, "memory cap exceeded: {bytes} bytes (cap {cap})")
            }
            SimError::InjectedFault(ev) => {
                write!(f, "injected fault: {} at cycle {}, line {:#x}", ev.kind, ev.cycle, ev.line)
            }
            SimError::CoreReused => write!(f, "core reused: OooCore::run called twice"),
            SimError::Panic { message } => write!(f, "worker panic: {message}"),
        }
    }
}

impl Error for SimError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SimError::ExecFault { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable_and_distinct() {
        let snap = DeadlockSnapshot {
            cycle: 100,
            last_commit_cycle: 3,
            committed: 2,
            rob_len: 1,
            rob_head: None,
            iq_unissued: 0,
            fetchq_len: 0,
            mshrs_in_use: 0,
            dram_calendar_depth: 0,
        };
        let all = [
            SimError::ExecFault { pc: 1, cycle: 2, source: ExecError::PcOutOfRange { pc: 1 } },
            SimError::Deadlock(Box::new(snap)),
            SimError::CycleBudgetExceeded { cycle: 5, budget: 4 },
            SimError::WallClockExceeded { elapsed_ms: 9, budget_ms: 8 },
            SimError::MemoryCapExceeded { bytes: 10, cap: 1 },
            SimError::CoreReused,
            SimError::Panic { message: "boom".into() },
        ];
        let kinds: Vec<&str> = all.iter().map(SimError::kind).collect();
        let mut dedup = kinds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), kinds.len());
        for e in &all {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn deadlock_display_names_the_head() {
        let snap = DeadlockSnapshot {
            cycle: 2_000_100,
            last_commit_cycle: 100,
            committed: 42,
            rob_len: 350,
            rob_head: Some("seq 42 pc 7 Load".into()),
            iq_unissued: 3,
            fetchq_len: 8,
            mshrs_in_use: 24,
            dram_calendar_depth: 2,
        };
        let s = SimError::Deadlock(Box::new(snap)).to_string();
        assert!(s.contains("seq 42 pc 7 Load"), "{s}");
        assert!(s.contains("24 MSHRs"), "{s}");
    }
}
