//! The cycle-level out-of-order core timing model.
//!
//! Execution-driven, execute-at-fetch: the functional [`Cpu`] runs the
//! architecturally correct path at the fetch frontier; the timing model
//! tracks register dependencies, structural hazards (ROB/IQ/LSQ capacity,
//! functional units, L1 ports), memory latencies through the shared
//! [`MemoryHierarchy`], and branch-misprediction redirects (fetch stalls
//! from resolution plus the 15-cycle front-end refill).

use std::collections::VecDeque;

use sim_isa::{AluOp, Cpu, FxHashMap, Instr, MemAccess, Program, SparseMemory, NUM_REGS};
use sim_mem::{
    AccessClass, HitLevel, ImpConfig, ImpPrefetcher, MemoryHierarchy, PrefetchSource,
    StridePrefetcher,
};

use crate::branch::TagePredictor;
use crate::config::CoreConfig;
use crate::engine::{ArchSnapshot, EngineCtx, RunaheadEngine};
use crate::error::{DeadlockSnapshot, SimError};
use crate::sanitize::SanitizeReport;
use crate::stats::CoreStats;

/// A dynamic (fetched) instruction, carrying both functional outcomes and
/// timing state.
#[derive(Clone, Copy, Debug)]
pub struct DynInst {
    /// Global sequence number (program order).
    pub seq: u64,
    /// Static PC.
    pub pc: usize,
    /// The instruction.
    pub instr: Instr,
    /// Memory access performed (loads/stores).
    pub mem: Option<MemAccess>,
    /// Branch outcome for conditional branches.
    pub branch_taken: Option<bool>,
    /// Operand values, aligned with [`Instr::srcs`] order.
    pub src_values: [u64; 3],
    /// Value written to the destination register, if any.
    pub dst_value: Option<u64>,
    /// Whether the direction predictor mispredicted this branch.
    pub mispredicted: bool,
    /// Producer sequence numbers for each source operand.
    deps: [Option<u64>; 3],
    /// Functional-unit class, computed once at fetch (the issue scan reads
    /// it every cycle).
    class: FuClass,
    /// Issued to execution.
    issued: bool,
    /// Completion cycle (`u64::MAX` until issued).
    complete_at: u64,
}

impl DynInst {
    /// Whether this is a load.
    pub fn is_load(&self) -> bool {
        self.instr.is_load()
    }

    /// Whether this is a store.
    pub fn is_store(&self) -> bool {
        self.instr.is_store()
    }

    /// Completion cycle (meaningful once issued).
    pub fn complete_at(&self) -> u64 {
        self.complete_at
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FuClass {
    Alu,
    Mul,
    Div,
    Load,
    Store,
}

fn fu_class(instr: &Instr) -> FuClass {
    match instr {
        Instr::Load { .. } => FuClass::Load,
        Instr::Store { .. } => FuClass::Store,
        Instr::Alu { op, .. } | Instr::AluImm { op, .. } => match op {
            AluOp::Mul => FuClass::Mul,
            AluOp::Div | AluOp::Rem => FuClass::Div,
            _ => FuClass::Alu,
        },
        _ => FuClass::Alu,
    }
}

fn exec_latency(instr: &Instr) -> u64 {
    match instr {
        Instr::Alu { op, .. } | Instr::AluImm { op, .. } => op.latency() as u64,
        _ => 1,
    }
}

/// Live bookkeeping for an in-progress stepwise run: the state
/// [`OooCore::run`] used to keep on its own stack (instruction target,
/// wall-clock anchor, watchdog reference cycle), externalized so a
/// discrete-event scheduler can interleave cores one cycle at a time.
/// Obtain one from [`OooCore::begin_run`]; feed it to every
/// [`OooCore::step_cycle`] call for that run.
#[derive(Debug)]
pub struct StepSession {
    /// Stop once `stats.committed` reaches this absolute count.
    target: u64,
    /// Wall-clock anchor for the amortized budget check (`None` when the
    /// budget is disabled, so unbudgeted runs never touch the clock).
    wall_start: Option<std::time::Instant>,
    /// Cycle of the most recent commit, for the forward-progress watchdog.
    last_commit_cycle: u64,
}

/// Outcome of one [`OooCore::step_cycle`] call.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Step {
    /// The core wants another cycle.
    Running,
    /// The instruction target was reached or the program halted and the
    /// pipeline drained; stop stepping this session.
    Done,
}

/// The out-of-order core.
///
/// Drive it with [`OooCore::run`], which simulates until the program halts
/// or an instruction budget is reached.
///
/// # Example
///
/// ```
/// use sim_isa::{Asm, Reg, SparseMemory};
/// use sim_mem::{HierarchyConfig, MemoryHierarchy};
/// use sim_ooo::{CoreConfig, NullEngine, OooCore};
///
/// let mut asm = Asm::new();
/// asm.li(Reg::R1, 4);
/// let top = asm.here();
/// asm.addi(Reg::R1, Reg::R1, -1);
/// asm.bnz(Reg::R1, top);
/// asm.halt();
/// let prog = asm.finish()?;
///
/// let mut core = OooCore::new(CoreConfig::default());
/// let mut mem = SparseMemory::new();
/// let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
/// let stats = core.run(&prog, &mut mem, &mut hier, &mut NullEngine, 1_000_000)?;
/// assert_eq!(stats.committed, 10); // li + 4x(addi+bnz) + halt
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct OooCore {
    cfg: CoreConfig,
    cpu: Cpu,
    bp: TagePredictor,
    stride_pf: Option<StridePrefetcher>,
    imp: Option<ImpPrefetcher>,

    cycle: u64,
    seq_next: u64,
    head_seq: u64,
    rob: VecDeque<DynInst>,
    /// Completion calendar aligned with `rob` (same push/pop order):
    /// `complete_at` once issued, `u64::MAX` before. Dependency checks walk
    /// this compact table instead of the full [`DynInst`] entries.
    sched: VecDeque<u64>,
    /// Issue-queue scan list: `(seq, blocking)` where `blocking` memoizes
    /// the producer that failed the last wakeup check (`u64::MAX` = none
    /// known). While that producer is still incomplete the scan skips the
    /// full dependency walk for this entry.
    unissued: Vec<(u64, u64)>,
    fetchq: VecDeque<DynInst>,
    rename: [Option<u64>; NUM_REGS],
    /// In-flight stores `(seq, addr, width)` for forwarding, in program order.
    pending_stores: VecDeque<(u64, u64, u64)>,
    /// Post-commit store buffer: recently retired store addresses still
    /// forwardable to younger loads (drained write combining).
    retired_stores: VecDeque<u64>,
    /// Multiplicity index over `retired_stores` so the forwarding check is
    /// a hash probe, not a 64-entry scan.
    retired_index: FxHashMap<u64, u32>,
    loads_in_rob: usize,
    stores_in_rob: usize,

    fetch_blocked_on: Option<u64>,
    fetch_stall_until: u64,
    commit_block_until: u64,
    stall_episode_armed: bool,
    rob_full_counted_this_cycle: bool,
    /// Set once [`OooCore::run`] returns; a second call fails with
    /// [`SimError::CoreReused`] instead of silently corrupting stats.
    finished: bool,

    /// Invariant-sanitizer ledger (populated when `cfg.sanitize` is set).
    san: SanitizeReport,
    stats: CoreStats,
}

impl OooCore {
    /// Creates a core in its reset state.
    pub fn new(cfg: CoreConfig) -> Self {
        OooCore {
            cfg,
            cpu: Cpu::new(),
            bp: TagePredictor::default(),
            stride_pf: cfg.stride_prefetcher.then(StridePrefetcher::paper_default),
            imp: cfg.imp_prefetcher.then(|| ImpPrefetcher::new(ImpConfig::default())),
            cycle: 0,
            seq_next: 0,
            head_seq: 0,
            rob: VecDeque::with_capacity(cfg.rob_size + 1),
            sched: VecDeque::with_capacity(cfg.rob_size + 1),
            unissued: Vec::with_capacity(cfg.rob_size + 1),
            fetchq: VecDeque::new(),
            rename: [None; NUM_REGS],
            pending_stores: VecDeque::new(),
            retired_stores: VecDeque::new(),
            retired_index: FxHashMap::default(),
            loads_in_rob: 0,
            stores_in_rob: 0,
            fetch_blocked_on: None,
            fetch_stall_until: 0,
            commit_block_until: 0,
            stall_episode_armed: true,
            rob_full_counted_this_cycle: false,
            finished: false,
            san: SanitizeReport::default(),
            stats: CoreStats::default(),
        }
    }

    /// Creates a core whose architectural CPU and branch predictor start
    /// from the given (typically checkpointed or warmed) state instead of
    /// reset. Microarchitectural state (ROB, queues, cycle counter) still
    /// starts empty — this is how the sampling driver threads one
    /// architectural thread through a sequence of detailed intervals.
    pub fn with_state(cfg: CoreConfig, cpu: Cpu, bp: TagePredictor) -> Self {
        OooCore { cpu, bp, ..OooCore::new(cfg) }
    }

    /// Consumes the core and returns the architectural CPU and branch
    /// predictor, so a sampling driver can carry them into the next
    /// fast-forward or detailed interval.
    pub fn into_state(self) -> (Cpu, TagePredictor) {
        (self.cpu, self.bp)
    }

    /// The configuration in use.
    pub fn config(&self) -> CoreConfig {
        self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &CoreStats {
        &self.stats
    }

    /// The branch predictor (for inspection).
    pub fn branch_predictor(&self) -> &TagePredictor {
        &self.bp
    }

    /// Current cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Seals the core and opens a [`StepSession`] covering `max_instrs`
    /// committed instructions, for scheduler-driven execution: a
    /// discrete-event harness calls [`OooCore::step_cycle`] once per tick
    /// and [`OooCore::finish_run`] when the session reports [`Step::Done`].
    /// [`OooCore::run`] is exactly this sequence, so a stepped core is
    /// cycle-identical to a looped one.
    ///
    /// # Errors
    ///
    /// [`SimError::CoreReused`] if the core already completed a sealed run.
    pub fn begin_run(&mut self, max_instrs: u64) -> Result<StepSession, SimError> {
        if self.finished {
            return Err(SimError::CoreReused);
        }
        self.finished = true;
        Ok(self.open_session(max_instrs))
    }

    fn open_session(&self, target: u64) -> StepSession {
        StepSession {
            target,
            wall_start: (self.cfg.max_wall_ms != 0).then(std::time::Instant::now),
            // Starts at the current cycle (not 0) so a resumed segment
            // doesn't inherit phantom commit-free cycles from earlier
            // segments.
            last_commit_cycle: self.cycle,
        }
    }

    /// End-of-run accounting for a stepped run: the deep sanitizer sweep,
    /// the final cycle count, and [`MemoryHierarchy::finalize`]. Call once
    /// per core when its [`StepSession`] ends (on [`Step::Done`] or an
    /// error); [`OooCore::run`] does this itself.
    pub fn finish_run(&mut self, hier: &mut MemoryHierarchy) {
        if self.cfg.sanitize {
            self.sanitize_deep(hier);
        }
        self.stats.cycles = self.cycle;
        hier.finalize();
    }

    /// Runs the program until it halts or `max_instrs` commit.
    ///
    /// Returns the accumulated statistics.
    ///
    /// # Errors
    ///
    /// Every failure mode is reported as a [`SimError`] instead of a
    /// panic: a functional executor fault ([`SimError::ExecFault`]), a
    /// wedged pipeline caught by the forward-progress watchdog
    /// ([`SimError::Deadlock`], with a diagnostic snapshot), an exceeded
    /// cycle/wall-clock/memory budget, a fatal injected fault from the
    /// fault-injection harness, or a second call on the same core
    /// ([`SimError::CoreReused`]). Statistics up to the failure point stay
    /// readable through [`OooCore::stats`] either way.
    pub fn run<E: RunaheadEngine + ?Sized>(
        &mut self,
        prog: &Program,
        mem: &mut SparseMemory,
        hier: &mut MemoryHierarchy,
        engine: &mut E,
        max_instrs: u64,
    ) -> Result<&CoreStats, SimError> {
        let mut session = self.begin_run(max_instrs)?;
        let result = self.drive(prog, mem, hier, engine, &mut session);
        // Finalization happens on both paths so partial statistics are
        // coherent (cycles set, unused prefetches accounted) even when the
        // run failed.
        self.finish_run(hier);
        result.map(|()| &self.stats)
    }

    /// Like [`OooCore::run`], but **resumable**: commits `max_instrs`
    /// *more* instructions (or fewer, if the program halts) and returns
    /// with the pipeline live, so a later `run_segment` call continues the
    /// same warm pipeline and cycle stream. Sampled simulation measures an
    /// interval in the very pipeline its detailed warmup filled — tearing
    /// the core down between warmup and measurement would charge every
    /// interval a pipeline refill the uninterrupted run never pays.
    ///
    /// Statistics are cumulative across segments; callers measure a
    /// segment by diffing [`OooCore::stats`] snapshots. End-of-run
    /// accounting ([`MemoryHierarchy::finalize`]) is *not* performed here —
    /// run it once when detailed execution for the region ends.
    ///
    /// # Errors
    ///
    /// Exactly the failure modes of [`OooCore::run`], except that only a
    /// core sealed by a completed [`OooCore::run`] reports
    /// [`SimError::CoreReused`].
    pub fn run_segment<E: RunaheadEngine + ?Sized>(
        &mut self,
        prog: &Program,
        mem: &mut SparseMemory,
        hier: &mut MemoryHierarchy,
        engine: &mut E,
        max_instrs: u64,
    ) -> Result<&CoreStats, SimError> {
        if self.finished {
            return Err(SimError::CoreReused);
        }
        let target = self.stats.committed.saturating_add(max_instrs);
        let mut session = self.open_session(target);
        let result = self.drive(prog, mem, hier, engine, &mut session);
        if self.cfg.sanitize {
            self.sanitize_deep(hier);
        }
        self.stats.cycles = self.cycle;
        result.map(|()| &self.stats)
    }

    /// Steps the session to completion — the lock-step loop [`OooCore::run`]
    /// always was, now expressed over [`OooCore::step_cycle`].
    fn drive<E: RunaheadEngine + ?Sized>(
        &mut self,
        prog: &Program,
        mem: &mut SparseMemory,
        hier: &mut MemoryHierarchy,
        engine: &mut E,
        session: &mut StepSession,
    ) -> Result<(), SimError> {
        loop {
            match self.step_cycle(prog, mem, hier, engine, session)? {
                Step::Running => {}
                Step::Done => return Ok(()),
            }
        }
    }

    /// Advances the core by exactly one cycle under an open [`StepSession`].
    ///
    /// This is the loop body of the original lock-step `run`, verbatim: the
    /// pipeline walks stages in reverse order (commit → issue → dispatch →
    /// fetch) so a value produced this cycle is consumed next cycle, then
    /// polls faults, sanitizer sweeps, the forward-progress watchdog, and
    /// the cycle/wall/memory budgets. A discrete-event scheduler calls this
    /// once per `(tick, core)` event; interleaving cores between calls is
    /// safe because all cross-core state lives in the shared LLC.
    ///
    /// Returns [`Step::Done`] when the session's instruction target is
    /// reached or the program has halted and drained; the caller must then
    /// run [`OooCore::finish_run`] (or stop stepping, for segments).
    ///
    /// # Errors
    ///
    /// The failure modes of [`OooCore::run`]; the session is dead after an
    /// error.
    pub fn step_cycle<E: RunaheadEngine + ?Sized>(
        &mut self,
        prog: &Program,
        mem: &mut SparseMemory,
        hier: &mut MemoryHierarchy,
        engine: &mut E,
        session: &mut StepSession,
    ) -> Result<Step, SimError> {
        if self.stats.committed >= session.target {
            return Ok(Step::Done);
        }
        self.cycle += 1;
        self.rob_full_counted_this_cycle = false;
        let committed_before = self.stats.committed;

        self.commit(hier);
        self.issue(prog, mem, hier, engine);
        self.dispatch(prog, mem, hier, engine);
        self.fetch(prog, mem)?;

        if let Some(ev) = hier.take_fault() {
            return Err(SimError::InjectedFault(ev));
        }

        if self.cfg.sanitize {
            self.sanitize_cycle(hier);
            // The per-set cache sweeps walk every way; amortize them.
            if self.cycle & 0xFFF == 0 {
                self.sanitize_deep(hier);
            }
        }

        if self.stats.committed > committed_before {
            session.last_commit_cycle = self.cycle;
        } else if self.cfg.watchdog_cycles != 0
            && self.cycle - session.last_commit_cycle >= self.cfg.watchdog_cycles
        {
            return Err(SimError::Deadlock(Box::new(
                self.snapshot(hier, session.last_commit_cycle),
            )));
        }

        if self.cfg.max_cycles != 0 && self.cycle >= self.cfg.max_cycles {
            return Err(SimError::CycleBudgetExceeded {
                cycle: self.cycle,
                budget: self.cfg.max_cycles,
            });
        }
        // The wall-clock and footprint checks are amortized: both cost
        // more than a cycle of simulation, so probing every cycle would
        // dominate the hot loop.
        if self.cycle & 0xFFFF == 0 {
            if let Some(start) = session.wall_start {
                let elapsed_ms = start.elapsed().as_millis() as u64;
                if elapsed_ms > self.cfg.max_wall_ms {
                    return Err(SimError::WallClockExceeded {
                        elapsed_ms,
                        budget_ms: self.cfg.max_wall_ms,
                    });
                }
            }
            if self.cfg.mem_cap_bytes != 0 {
                let bytes = mem.footprint_bytes() as u64;
                if bytes > self.cfg.mem_cap_bytes {
                    return Err(SimError::MemoryCapExceeded { bytes, cap: self.cfg.mem_cap_bytes });
                }
            }
        }

        if self.cpu.is_halted() && self.fetchq.is_empty() && self.rob.is_empty() {
            return Ok(Step::Done);
        }
        Ok(Step::Running)
    }

    /// The invariant-sanitizer ledger (populated when
    /// [`CoreConfig::sanitize`] is set).
    pub fn sanitize_report(&self) -> &SanitizeReport {
        &self.san
    }

    /// Mutable ledger access, for folding in checks the core cannot run
    /// itself (the runner's architectural-state digest diff).
    pub fn sanitize_report_mut(&mut self) -> &mut SanitizeReport {
        &mut self.san
    }

    /// Instructions the functional executor has retired at the fetch
    /// frontier (the replay length for the digest check).
    pub fn functional_retired(&self) -> u64 {
        self.cpu.retired()
    }

    /// The functional executor's architectural register file.
    pub fn functional_regs(&self) -> [u64; NUM_REGS] {
        self.cpu.regs()
    }

    /// One read-only structural sweep of the pipeline. Every condition is
    /// computed from `&self` state; findings go to the ledger only, so the
    /// sweep cannot perturb timing.
    fn sanitize_cycle(&mut self, hier: &MemoryHierarchy) {
        // Take the ledger out so the checks below can borrow `self` freely.
        let mut san = std::mem::take(&mut self.san);
        let cycle = self.cycle;

        // ROB / completion-calendar alignment and capacity.
        san.check(self.rob.len() == self.sched.len(), || {
            format!(
                "cycle {cycle}: rob len {} != completion calendar len {}",
                self.rob.len(),
                self.sched.len()
            )
        });
        san.check(self.rob.len() <= self.cfg.rob_size, || {
            format!("cycle {cycle}: rob holds {} > {} entries", self.rob.len(), self.cfg.rob_size)
        });

        // Age ordering: sequence numbers are contiguous from the head, the
        // calendar mirrors each entry's completion time, and nothing is
        // "complete" without having issued.
        let mut loads = 0usize;
        let mut stores = 0usize;
        let mut unissued_in_rob = 0usize;
        for (i, di) in self.rob.iter().enumerate() {
            san.check(di.seq == self.head_seq + i as u64, || {
                format!(
                    "cycle {cycle}: rob[{i}] seq {} breaks age order (head seq {})",
                    di.seq, self.head_seq
                )
            });
            san.check(self.sched[i] == di.complete_at, || {
                format!(
                    "cycle {cycle}: calendar[{i}] = {} but rob entry completes at {}",
                    self.sched[i], di.complete_at
                )
            });
            san.check(di.issued || di.complete_at == u64::MAX, || {
                format!("cycle {cycle}: rob[{i}] has a completion time but never issued")
            });
            loads += di.is_load() as usize;
            stores += di.is_store() as usize;
            unissued_in_rob += !di.issued as usize;
        }

        // LQ/SQ counters balance against the ROB contents and capacity.
        san.check(loads == self.loads_in_rob, || {
            format!("cycle {cycle}: LQ counter {} but {loads} loads in rob", self.loads_in_rob)
        });
        san.check(stores == self.stores_in_rob, || {
            format!("cycle {cycle}: SQ counter {} but {stores} stores in rob", self.stores_in_rob)
        });
        san.check(self.loads_in_rob <= self.cfg.lq_size, || {
            format!("cycle {cycle}: LQ over capacity: {} > {}", self.loads_in_rob, self.cfg.lq_size)
        });
        san.check(self.stores_in_rob <= self.cfg.sq_size, || {
            format!(
                "cycle {cycle}: SQ over capacity: {} > {}",
                self.stores_in_rob, self.cfg.sq_size
            )
        });

        // The issue-queue scan list holds exactly the unissued ROB entries.
        san.check(unissued_in_rob == self.unissued.len(), || {
            format!(
                "cycle {cycle}: {} unissued rob entries but {} scan-list entries",
                unissued_in_rob,
                self.unissued.len()
            )
        });
        for &(seq, _) in &self.unissued {
            let idx = seq.wrapping_sub(self.head_seq) as usize;
            let ok = seq >= self.head_seq && idx < self.rob.len() && !self.rob[idx].issued;
            san.check(ok, || {
                format!("cycle {cycle}: scan-list seq {seq} is not a live unissued entry")
            });
        }

        // Rename table points at live producers of the right register.
        for (r, slot) in self.rename.iter().enumerate() {
            if let Some(seq) = *slot {
                let idx = seq.wrapping_sub(self.head_seq) as usize;
                let ok = seq >= self.head_seq
                    && idx < self.rob.len()
                    && self.rob[idx].instr.dst().map(|d| d.index()) == Some(r);
                san.check(ok, || {
                    format!("cycle {cycle}: rename[r{r}] = {seq} is not a live producer of r{r}")
                });
            }
        }

        // In-flight stores: program order, alive, and actually stores.
        let mut prev: Option<u64> = None;
        for &(seq, _, _) in &self.pending_stores {
            let idx = seq.wrapping_sub(self.head_seq) as usize;
            let ok = seq >= self.head_seq && idx < self.rob.len() && self.rob[idx].is_store();
            san.check(ok, || format!("cycle {cycle}: pending store seq {seq} is not a live store"));
            san.check(prev.is_none_or(|p| p < seq), || {
                format!("cycle {cycle}: pending stores out of program order at seq {seq}")
            });
            prev = Some(seq);
        }

        // Post-commit store buffer and its multiplicity index agree.
        san.check(self.retired_stores.len() <= 64, || {
            format!("cycle {cycle}: post-commit store buffer overflow")
        });
        let indexed: u32 = self.retired_index.values().sum();
        san.check(indexed as usize == self.retired_stores.len(), || {
            format!(
                "cycle {cycle}: retired-store index counts {indexed} but buffer holds {}",
                self.retired_stores.len()
            )
        });

        // MSHR allocate/release balance.
        san.absorb(hier.check_invariants(cycle, false));
        self.san = san;
    }

    /// The amortized sweep: per-set cache consistency on top of the MSHR
    /// balance. Run every 4 Ki cycles and once at the end of the run.
    fn sanitize_deep(&mut self, hier: &MemoryHierarchy) {
        let mut san = std::mem::take(&mut self.san);
        san.absorb(hier.check_invariants(self.cycle, true));
        self.san = san;
    }

    /// Captures the pipeline state for a deadlock diagnostic.
    fn snapshot(&self, hier: &MemoryHierarchy, last_commit_cycle: u64) -> DeadlockSnapshot {
        DeadlockSnapshot {
            cycle: self.cycle,
            last_commit_cycle,
            committed: self.stats.committed,
            rob_len: self.rob.len(),
            rob_head: self.rob.front().map(|di| {
                format!(
                    "seq {} pc {} {:?} (issued: {}, complete_at: {})",
                    di.seq, di.pc, di.instr, di.issued, di.complete_at
                )
            }),
            iq_unissued: self.unissued.len(),
            fetchq_len: self.fetchq.len(),
            mshrs_in_use: hier.mshrs_in_use(self.cycle),
            dram_calendar_depth: hier.dram_calendar_depth(),
        }
    }

    fn commit(&mut self, hier: &mut MemoryHierarchy) {
        // Engine-imposed commit block (VR delayed termination).
        if self.commit_block_until > self.cycle {
            if let Some(head) = self.rob.front() {
                if head.issued && head.complete_at <= self.cycle {
                    self.stats.commit_blocked_engine_cycles += 1;
                }
            }
            return;
        }
        let mut n = 0;
        while n < self.cfg.width {
            let Some(head) = self.rob.front() else { break };
            if !head.issued || head.complete_at > self.cycle {
                break;
            }
            let di = self.rob.pop_front().expect("head exists");
            self.sched.pop_front();
            self.head_seq += 1;
            if let Some(dst) = di.instr.dst() {
                if self.rename[dst.index()] == Some(di.seq) {
                    self.rename[dst.index()] = None;
                }
            }
            if di.is_load() {
                self.loads_in_rob -= 1;
            }
            if di.is_store() {
                self.stores_in_rob -= 1;
                let m = di.mem.expect("store has a memory access");
                hier.store(self.cycle, m.addr, AccessClass::Demand);
                // Stores commit in order; move the forwarding entry into the
                // post-commit store buffer.
                if let Some(pos) = self.pending_stores.iter().position(|(s, _, _)| *s == di.seq) {
                    self.pending_stores.remove(pos);
                }
                self.retired_stores.push_back(m.addr);
                *self.retired_index.entry(m.addr).or_insert(0) += 1;
                if self.retired_stores.len() > 64 {
                    let old = self.retired_stores.pop_front().expect("len > 64");
                    let n = self.retired_index.get_mut(&old).expect("indexed");
                    *n -= 1;
                    if *n == 0 {
                        self.retired_index.remove(&old);
                    }
                }
            }
            if di.instr.is_cond_branch() {
                self.stats.cond_branches += 1;
                if di.mispredicted {
                    self.stats.branch_mispredicts += 1;
                }
            }
            self.stats.committed += 1;
            n += 1;
        }
    }

    fn issue<E: RunaheadEngine + ?Sized>(
        &mut self,
        prog: &Program,
        mem: &SparseMemory,
        hier: &mut MemoryHierarchy,
        engine: &mut E,
    ) {
        let mut slots = self.cfg.issue_width;
        let mut alu = self.cfg.int_alu;
        let mut mul = self.cfg.int_mul;
        let mut div = self.cfg.int_div;
        let mut ld = self.cfg.load_ports;
        let mut st = self.cfg.store_ports;

        // Single compacting pass over the scan list: entries that stay
        // unissued are written back at `w`, issued ones are dropped. All
        // skip conditions below are side-effect-free, so the set of
        // instructions issued each cycle — and therefore every timing
        // outcome — is identical to checking them in any other order.
        let len = self.unissued.len();
        let mut r = 0;
        let mut w = 0;
        let mut scanned = 0;
        while r < len && scanned < self.cfg.iq_size && slots > 0 {
            scanned += 1;
            let (seq, blocking) = self.unissued[r];
            let idx = (seq - self.head_seq) as usize;

            // Wakeup filter: while the producer that blocked this entry on
            // the previous scan is still incomplete, the full dependency
            // walk cannot pass — skip without touching the ROB entry.
            if blocking != u64::MAX
                && blocking >= self.head_seq
                && self.sched[(blocking - self.head_seq) as usize] > self.cycle
            {
                self.unissued[w] = (seq, blocking);
                w += 1;
                r += 1;
                continue;
            }

            // Check functional-unit availability for this class.
            let class = self.rob[idx].class;
            let unit = match class {
                FuClass::Alu => &mut alu,
                FuClass::Mul => &mut mul,
                FuClass::Div => &mut div,
                FuClass::Load => &mut ld,
                FuClass::Store => &mut st,
            };
            if *unit == 0 {
                self.unissued[w] = (seq, blocking);
                w += 1;
                r += 1;
                continue;
            }

            if let Some(dep) = self.first_unready_dep(idx) {
                self.unissued[w] = (seq, dep);
                w += 1;
                r += 1;
                continue;
            }

            // Loads: memory-dependence check against older in-flight stores.
            let mut forward = false;
            if class == FuClass::Load {
                match self.store_dependence(seq, self.rob[idx].mem.expect("load access").addr) {
                    StoreDep::None => {}
                    StoreDep::Forward => forward = true,
                    StoreDep::NotReady => {
                        self.unissued[w] = (seq, blocking);
                        w += 1;
                        r += 1;
                        continue;
                    }
                }
            }

            // Issue it.
            *unit -= 1;
            slots -= 1;
            r += 1;
            let cycle = self.cycle;
            let di = &mut self.rob[idx];
            di.issued = true;
            let instr = di.instr;
            let m = di.mem;
            let pcv = di.pc;
            let complete_at = if class == FuClass::Load {
                let m = m.expect("load access");
                self.stats.loads += 1;
                if forward {
                    self.stats.store_forwards += 1;
                    cycle + 1
                } else {
                    let mut ctx =
                        EngineCtx { cycle, prog, frontier: ArchSnapshot::of(&self.cpu), mem, hier };
                    match engine.override_load(&mut ctx, m.addr) {
                        Some(lat) => cycle + lat,
                        None => {
                            let acc = hier.load(cycle, m.addr, AccessClass::Demand);
                            // Hardware prefetchers train on demand loads.
                            if let Some(sp) = &mut self.stride_pf {
                                for &p in sp.train(pcv, m.addr).prefetches() {
                                    hier.prefetch(cycle, p, PrefetchSource::Stride);
                                }
                            }
                            if let Some(imp) = &mut self.imp {
                                let was_miss = acc.level != HitLevel::L1;
                                for p in
                                    imp.observe_load(pcv, m.addr, m.value, m.width, was_miss, mem)
                                {
                                    hier.prefetch(cycle, p, PrefetchSource::Imp);
                                }
                            }
                            acc.complete_at
                        }
                    }
                }
            } else if class == FuClass::Store {
                self.stats.stores += 1;
                cycle + 1
            } else {
                cycle + exec_latency(&instr)
            };
            let di = &mut self.rob[idx];
            di.complete_at = complete_at;
            self.sched[idx] = complete_at;

            // A resolving mispredicted branch redirects fetch.
            if di.mispredicted && self.fetch_blocked_on == Some(seq) {
                self.fetch_stall_until = complete_at + self.cfg.frontend_penalty;
                self.fetch_blocked_on = None;
            }
        }
        if r > w {
            self.unissued.copy_within(r..len, w);
            self.unissued.truncate(w + (len - r));
        }
    }

    /// First source operand whose producer has not completed, if any
    /// (`None` means the instruction is ready to issue).
    fn first_unready_dep(&self, idx: usize) -> Option<u64> {
        for dep in self.rob[idx].deps.iter().flatten() {
            if *dep >= self.head_seq && self.sched[(*dep - self.head_seq) as usize] > self.cycle {
                return Some(*dep);
            }
        }
        None
    }

    fn store_dependence(&self, load_seq: u64, addr: u64) -> StoreDep {
        // Scan youngest-first for the most recent older store to this address.
        for (sseq, saddr, _) in self.pending_stores.iter().rev() {
            if *sseq >= load_seq {
                continue;
            }
            if *saddr == addr {
                let idx = (*sseq - self.head_seq) as usize;
                return if self.sched[idx] <= self.cycle {
                    StoreDep::Forward
                } else {
                    StoreDep::NotReady
                };
            }
        }
        if self.retired_index.contains_key(&addr) {
            return StoreDep::Forward;
        }
        StoreDep::None
    }

    fn dispatch<E: RunaheadEngine + ?Sized>(
        &mut self,
        prog: &Program,
        mem: &SparseMemory,
        hier: &mut MemoryHierarchy,
        engine: &mut E,
    ) {
        if self.rob.len() < self.cfg.rob_size {
            self.stall_episode_armed = true;
        }
        let mut n = 0;
        while n < self.cfg.width {
            if self.fetchq.is_empty() {
                break;
            }
            let next_is_load = self.fetchq.front().is_some_and(DynInst::is_load);
            let next_is_store = self.fetchq.front().is_some_and(DynInst::is_store);
            // The instruction window is full when the ROB — or, for
            // load-heavy code, the LQ/SQ — cannot accept the next
            // instruction. All three back-pressure dispatch and constitute
            // the classic runahead trigger when a load miss blocks the head.
            let window_full = self.rob.len() >= self.cfg.rob_size
                || (next_is_load && self.loads_in_rob >= self.cfg.lq_size)
                || (next_is_store && self.stores_in_rob >= self.cfg.sq_size);
            if window_full {
                self.note_window_full(prog, mem, hier, engine);
                break;
            }

            let mut di = self.fetchq.pop_front().expect("nonempty");
            for (k, r) in di.instr.srcs().enumerate() {
                di.deps[k] = self.rename[r.index()];
            }
            if let Some(dst) = di.instr.dst() {
                self.rename[dst.index()] = Some(di.seq);
            }
            if di.is_load() {
                self.loads_in_rob += 1;
            }
            if di.is_store() {
                self.stores_in_rob += 1;
                let m = di.mem.expect("store access");
                self.pending_stores.push_back((di.seq, m.addr, m.width));
            }

            {
                let mut ctx = EngineCtx {
                    cycle: self.cycle,
                    prog,
                    frontier: ArchSnapshot::of(&self.cpu),
                    mem,
                    hier,
                };
                engine.on_dispatch(&mut ctx, &di);
            }

            self.unissued.push((di.seq, u64::MAX));
            self.sched.push_back(u64::MAX);
            self.rob.push_back(di);
            n += 1;
        }
    }

    fn note_window_full<E: RunaheadEngine + ?Sized>(
        &mut self,
        prog: &Program,
        mem: &SparseMemory,
        hier: &mut MemoryHierarchy,
        engine: &mut E,
    ) {
        if !self.rob_full_counted_this_cycle {
            self.stats.rob_full_stall_cycles += 1;
            self.rob_full_counted_this_cycle = true;
        }
        let Some(head) = self.rob.front() else { return };
        // The classic runahead trigger: a *long-latency* load blocks the
        // head (an L2-hit blip does not send the core into runahead).
        let head_pending_load = head.is_load() && head.issued && head.complete_at > self.cycle + 30;
        if head_pending_load && self.stall_episode_armed {
            self.stall_episode_armed = false;
            self.stats.full_rob_stall_events += 1;
            let head_complete = head.complete_at;
            let mut ctx = EngineCtx {
                cycle: self.cycle,
                prog,
                frontier: ArchSnapshot::of(&self.cpu),
                mem,
                hier,
            };
            let block = engine.on_full_rob_stall(&mut ctx, head_complete);
            self.commit_block_until = self.commit_block_until.max(block);
        }
    }

    fn fetch(&mut self, prog: &Program, mem: &mut SparseMemory) -> Result<(), SimError> {
        if self.cpu.is_halted()
            || self.fetch_blocked_on.is_some()
            || self.cycle < self.fetch_stall_until
        {
            return Ok(());
        }
        let mut n = 0;
        while n < self.cfg.width && self.fetchq.len() < self.cfg.fetch_queue {
            let pc = self.cpu.pc();
            let Some(instr) = prog.fetch(pc).copied() else {
                // Off the end: the functional step reports Halted for a
                // clean fall-through and PcOutOfRange for a wild jump.
                match self.cpu.step(prog, mem) {
                    Err(e) => {
                        return Err(SimError::ExecFault { pc, cycle: self.cycle, source: e });
                    }
                    Ok(_) => break,
                }
            };
            let mut src_values = [0u64; 3];
            for (k, r) in instr.srcs().enumerate() {
                src_values[k] = self.cpu.reg(r);
            }
            match self.cpu.step(prog, mem) {
                Ok(sim_isa::StepEvent::Executed(step)) => {
                    let mut di = DynInst {
                        seq: self.seq_next,
                        pc,
                        instr: step.instr,
                        mem: step.mem,
                        branch_taken: step.branch_taken,
                        src_values,
                        dst_value: step.dst_value,
                        mispredicted: false,
                        deps: [None; 3],
                        class: fu_class(&step.instr),
                        issued: false,
                        complete_at: u64::MAX,
                    };
                    self.seq_next += 1;
                    let mut stop = false;
                    if let Some(taken) = step.branch_taken {
                        let predicted = self.bp.predict(pc);
                        self.bp.update(pc, taken, predicted);
                        if predicted != taken {
                            di.mispredicted = true;
                            self.fetch_blocked_on = Some(di.seq);
                            stop = true;
                        }
                    }
                    self.fetchq.push_back(di);
                    n += 1;
                    if stop {
                        break;
                    }
                }
                Ok(sim_isa::StepEvent::Halted) => break,
                Err(e) => return Err(SimError::ExecFault { pc, cycle: self.cycle, source: e }),
            }
        }
        Ok(())
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum StoreDep {
    /// No older in-flight store to this address.
    None,
    /// An older store has executed: forward its data.
    Forward,
    /// An older store to the same address has not executed yet.
    NotReady,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::NullEngine;
    use sim_isa::{Asm, Reg};
    use sim_mem::HierarchyConfig;

    fn run_program(prog: &Program, mem: &mut SparseMemory, max: u64) -> CoreStats {
        let mut core = OooCore::new(CoreConfig::default());
        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        *core.run(prog, mem, &mut hier, &mut NullEngine, max).expect("run failed")
    }

    #[test]
    fn straight_line_alu_reaches_high_ipc() {
        let mut asm = Asm::new();
        // 64 independent chains of adds interleaved: plenty of ILP.
        for i in 0..500 {
            let r = Reg::from_index(1 + (i % 8)).unwrap();
            asm.addi(r, r, 1);
        }
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = SparseMemory::new();
        let stats = run_program(&prog, &mut mem, 1_000_000);
        assert_eq!(stats.committed, 501);
        assert!(stats.ipc() > 3.0, "IPC {} too low for pure ILP", stats.ipc());
    }

    #[test]
    fn serial_dependency_chain_limits_ipc() {
        let mut asm = Asm::new();
        for _ in 0..500 {
            asm.addi(Reg::R1, Reg::R1, 1); // one long chain
        }
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = SparseMemory::new();
        let stats = run_program(&prog, &mut mem, 1_000_000);
        assert!(stats.ipc() < 1.2, "serial chain must be ~1 IPC, got {}", stats.ipc());
    }

    #[test]
    fn program_result_is_architecturally_correct() {
        // Timing model must not perturb functional results.
        let mut asm = Asm::new();
        let (acc, i, n, t, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        asm.li(acc, 0);
        asm.li(i, 0);
        asm.li(n, 100);
        let top = asm.here();
        asm.mul(t, i, i);
        asm.add(acc, acc, t);
        asm.addi(i, i, 1);
        asm.slt(c, i, n);
        asm.bnz(c, top);
        asm.li(Reg::R8, 0x9000);
        asm.st8(acc, Reg::R8, 0);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = SparseMemory::new();
        run_program(&prog, &mut mem, 10_000_000);
        let expect: u64 = (0..100u64).map(|x| x * x).sum();
        assert_eq!(mem.read_u64(0x9000), expect);
    }

    #[test]
    fn dependent_misses_fill_the_rob() {
        // A pointer chase: each load depends on the previous one; misses
        // serialize and the ROB backs up behind them.
        let mut asm = Asm::new();
        let (p, i, n, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4);
        asm.li(p, 0x10_0000);
        asm.li(i, 0);
        asm.li(n, 200);
        let top = asm.here();
        asm.ld8(p, p, 0);
        asm.addi(i, i, 1);
        asm.slt(c, i, n);
        asm.bnz(c, top);
        asm.halt();
        let prog = asm.finish().unwrap();

        // Build a pointer chain spanning many distinct lines.
        let mut mem = SparseMemory::new();
        let mut addr = 0x10_0000u64;
        let mut x: u64 = 1;
        for _ in 0..256 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let next = 0x10_0000 + ((x >> 20) & 0xFFFF) * 64;
            mem.write_u64(addr, next);
            addr = next;
        }
        let stats = run_program(&prog, &mut mem, 10_000_000);
        assert!(stats.ipc() < 0.5, "pointer chase should be memory-bound, IPC {}", stats.ipc());
        assert!(stats.loads >= 200);
    }

    #[test]
    fn store_forwarding_works() {
        let mut asm = Asm::new();
        asm.li(Reg::R1, 0x8000);
        asm.li(Reg::R2, 1234);
        asm.st8(Reg::R2, Reg::R1, 0);
        asm.ld8(Reg::R3, Reg::R1, 0); // should forward, not miss to DRAM
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = SparseMemory::new();
        let stats = run_program(&prog, &mut mem, 1000);
        assert_eq!(stats.store_forwards, 1);
        assert!(stats.cycles < 100, "forwarded load must not wait for DRAM");
    }

    #[test]
    fn branch_mispredicts_cost_cycles() {
        // Data-dependent unpredictable branches vs. perfectly biased ones.
        let run_with_pattern = |values: &[u64]| -> (u64, u64) {
            let mut asm = Asm::new();
            let (base, i, n, v, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
            asm.li(base, 0x4_0000);
            asm.li(i, 0);
            asm.li(n, values.len() as i64);
            let top = asm.here();
            let skip = asm.label();
            asm.ld8_idx(v, base, i, 3);
            asm.bez(v, skip);
            asm.addi(Reg::R6, Reg::R6, 1);
            asm.bind(skip);
            asm.addi(i, i, 1);
            asm.slt(c, i, n);
            asm.bnz(c, top);
            asm.halt();
            let prog = asm.finish().unwrap();
            let mut mem = SparseMemory::new();
            mem.write_u64_slice(0x4_0000, values);
            let stats = run_program(&prog, &mut mem, 10_000_000);
            (stats.cycles, stats.branch_mispredicts)
        };

        let biased: Vec<u64> = vec![1; 4096];
        let mut x: u64 = 88172645463325252;
        let random: Vec<u64> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1
            })
            .collect();
        let (cycles_biased, mp_biased) = run_with_pattern(&biased);
        let (cycles_random, mp_random) = run_with_pattern(&random);
        assert!(mp_random > mp_biased * 10, "{mp_random} vs {mp_biased}");
        assert!(cycles_random > cycles_biased, "{cycles_random} vs {cycles_biased}");
    }

    #[test]
    fn rob_full_stall_detected_on_memory_bound_code() {
        let mut asm = Asm::new();
        let (base, i, n, v, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
        asm.li(base, 0x20_0000);
        asm.li(i, 0);
        asm.li(n, 2000);
        let top = asm.here();
        // A dependent chain long enough to block the ROB head.
        asm.ld8_idx(v, base, i, 3);
        asm.ld8_idx(v, base, v, 3);
        asm.addi(i, i, 1);
        asm.slt(c, i, n);
        asm.bnz(c, top);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = SparseMemory::new();
        // Pseudo-random in-range indices over a DRAM-sized region.
        let mut x: u64 = 7;
        let vals: Vec<u64> = (0..4096)
            .map(|_| {
                x = x.wrapping_mul(25214903917).wrapping_add(11);
                (x >> 16) % 4096
            })
            .collect();
        mem.write_u64_slice(0x20_0000, &vals);

        let mut core = OooCore::new(CoreConfig::default());
        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        let stats =
            *core.run(&prog, &mut mem, &mut hier, &mut NullEngine, 10_000_000).expect("run failed");
        assert!(stats.full_rob_stall_events > 0, "expected full-ROB stalls");
        assert!(stats.rob_full_stall_cycles > 0);
    }

    #[test]
    fn watchdog_reports_deadlock_with_snapshot() {
        // Drop every demand-miss response: the first missing load never
        // completes, commit wedges at the ROB head, and the watchdog must
        // return a structured diagnostic instead of panicking.
        let mut asm = Asm::new();
        asm.li(Reg::R1, 0x10_0000);
        asm.ld8(Reg::R2, Reg::R1, 0);
        asm.addi(Reg::R2, Reg::R2, 1);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = SparseMemory::new();
        let cfg = CoreConfig { watchdog_cycles: 10_000, ..CoreConfig::default() };
        let mut core = OooCore::new(cfg);
        let fault = Some(sim_mem::FaultConfig::seeded(1).with_drop(1));
        let mut hier =
            MemoryHierarchy::new(HierarchyConfig { fault, ..HierarchyConfig::default() });
        let err = core
            .run(&prog, &mut mem, &mut hier, &mut NullEngine, 1_000_000)
            .expect_err("dropped response must wedge the pipeline");
        let crate::SimError::Deadlock(snap) = err else {
            panic!("expected Deadlock, got {err:?}");
        };
        assert!(snap.cycle >= 10_000);
        assert!(snap.cycle - snap.last_commit_cycle >= 10_000);
        assert!(snap.rob_len >= 1);
        let head = snap.rob_head.as_deref().expect("a load blocks the head");
        assert!(head.contains("Load"), "head should be the wedged load: {head}");
        assert!(snap.mshrs_in_use >= 1, "the dropped miss still holds its MSHR");
        // Partial stats stay coherent after the failure.
        assert_eq!(core.stats().cycles, snap.cycle);
    }

    #[test]
    fn watchdog_can_be_disabled_but_cycle_budget_still_binds() {
        let mut asm = Asm::new();
        asm.li(Reg::R1, 0x10_0000);
        asm.ld8(Reg::R2, Reg::R1, 0);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = SparseMemory::new();
        let cfg = CoreConfig { watchdog_cycles: 0, max_cycles: 30_000, ..CoreConfig::default() };
        let mut core = OooCore::new(cfg);
        let fault = Some(sim_mem::FaultConfig::seeded(1).with_drop(1));
        let mut hier =
            MemoryHierarchy::new(HierarchyConfig { fault, ..HierarchyConfig::default() });
        let err = core
            .run(&prog, &mut mem, &mut hier, &mut NullEngine, 1_000_000)
            .expect_err("cycle budget must trip");
        assert!(
            matches!(err, crate::SimError::CycleBudgetExceeded { cycle: 30_000, budget: 30_000 }),
            "{err:?}"
        );
    }

    #[test]
    fn reusing_a_core_is_an_error() {
        let mut asm = Asm::new();
        asm.addi(Reg::R1, Reg::R1, 1);
        asm.halt();
        let prog = asm.finish().unwrap();
        let mut mem = SparseMemory::new();
        let mut core = OooCore::new(CoreConfig::default());
        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        core.run(&prog, &mut mem, &mut hier, &mut NullEngine, 1_000).expect("first run");
        let committed = core.stats().committed;
        let err = core
            .run(&prog, &mut mem, &mut hier, &mut NullEngine, 1_000)
            .expect_err("second run must be rejected");
        assert_eq!(err, crate::SimError::CoreReused);
        assert_eq!(core.stats().committed, committed, "stats untouched by the rejected call");
    }

    #[test]
    fn sanitizer_is_clean_and_timing_neutral() {
        let build = || {
            let mut asm = Asm::new();
            let (base, i, n, v, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
            asm.li(base, 0x20_0000);
            asm.li(i, 0);
            asm.li(n, 500);
            let top = asm.here();
            asm.ld8_idx(v, base, i, 3);
            asm.ld8_idx(v, base, v, 3);
            asm.st8(v, base, 0x8000);
            asm.addi(i, i, 1);
            asm.slt(c, i, n);
            asm.bnz(c, top);
            asm.halt();
            asm.finish().unwrap()
        };
        let build_mem = || {
            let mut mem = SparseMemory::new();
            let mut x: u64 = 7;
            let vals: Vec<u64> = (0..4096)
                .map(|_| {
                    x = x.wrapping_mul(25214903917).wrapping_add(11);
                    (x >> 16) % 4096
                })
                .collect();
            mem.write_u64_slice(0x20_0000, &vals);
            mem
        };
        let mut results = vec![];
        for sanitize in [false, true] {
            let prog = build();
            let mut mem = build_mem();
            let mut core = OooCore::new(CoreConfig { sanitize, ..CoreConfig::default() });
            let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
            let stats = *core
                .run(&prog, &mut mem, &mut hier, &mut NullEngine, 10_000_000)
                .expect("run failed");
            if sanitize {
                let report = core.sanitize_report();
                assert!(report.is_clean(), "violations: {:?}", report.first);
                assert!(report.checks > 0);
            } else {
                assert_eq!(core.sanitize_report().checks, 0, "sanitizer must stay off");
            }
            results.push((stats.cycles, stats.committed, stats.loads, stats.branch_mispredicts));
        }
        assert_eq!(results[0], results[1], "sanitizer changed timing");
    }

    #[test]
    fn smaller_rob_stalls_more() {
        let build = || {
            let mut asm = Asm::new();
            let (base, i, n, v, c) = (Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5);
            asm.li(base, 0x20_0000);
            asm.li(i, 0);
            asm.li(n, 1000);
            let top = asm.here();
            asm.ld8_idx(v, base, i, 3);
            asm.ld8_idx(v, base, v, 3);
            asm.addi(i, i, 1);
            asm.slt(c, i, n);
            asm.bnz(c, top);
            asm.halt();
            asm.finish().unwrap()
        };
        let mut fractions = vec![];
        for rob in [64usize, 350] {
            let prog = build();
            let mut mem = SparseMemory::new();
            let mut x: u64 = 7;
            let vals: Vec<u64> = (0..4096)
                .map(|_| {
                    x = x.wrapping_mul(25214903917).wrapping_add(11);
                    (x >> 16) % 4096
                })
                .collect();
            mem.write_u64_slice(0x20_0000, &vals);
            let mut core = OooCore::new(CoreConfig::with_rob(rob));
            let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
            let stats = *core
                .run(&prog, &mut mem, &mut hier, &mut NullEngine, 10_000_000)
                .expect("run failed");
            fractions.push(stats.rob_full_stall_fraction());
        }
        assert!(
            fractions[0] > fractions[1],
            "64-entry ROB should stall more than 350: {fractions:?}"
        );
    }
}
