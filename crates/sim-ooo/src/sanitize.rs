//! The cycle-model invariant sanitizer's violation ledger.
//!
//! When [`CoreConfig::sanitize`](crate::CoreConfig) is set, the core runs
//! read-only structural checks every cycle (ROB age-ordering and calendar
//! alignment, rename-table validity, LSQ counter balance, MSHR
//! allocate/release balance) plus amortized per-set cache sweeps, and the
//! runner diffs the timing core's architectural state against a fresh
//! functional replay (prefetch-is-timing-only). Findings land here; the
//! simulation itself is never perturbed — every check takes `&self` on the
//! structures it inspects and results go to this ledger only, so reports
//! stay byte-identical with the sanitizer on or off.

/// Counts of invariant checks run and violations found, with the first few
/// violation messages retained for diagnosis.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    /// Individual invariant assertions evaluated.
    pub checks: u64,
    /// Assertions that failed.
    pub violations: u64,
    /// The first few violation messages (capped so a systematically broken
    /// invariant cannot balloon memory).
    pub first: Vec<String>,
}

/// How many violation messages are retained verbatim.
pub const MAX_RETAINED: usize = 8;

impl SanitizeReport {
    /// Records one assertion: `ok == true` counts a passing check, `false`
    /// counts a violation and retains the (lazily built) message. Public so
    /// the runner can fold its architectural-digest checks into the ledger.
    pub fn check(&mut self, ok: bool, msg: impl FnOnce() -> String) {
        self.checks += 1;
        if !ok {
            self.violations += 1;
            if self.first.len() < MAX_RETAINED {
                self.first.push(msg());
            }
        }
    }

    /// Records an externally produced batch of violation messages against
    /// one logical check (used for the hierarchy sweeps).
    pub(crate) fn absorb(&mut self, messages: Vec<String>) {
        self.checks += 1;
        for m in messages {
            self.violations += 1;
            if self.first.len() < MAX_RETAINED {
                self.first.push(m);
            }
        }
    }

    /// Whether every check passed.
    pub fn is_clean(&self) -> bool {
        self.violations == 0
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        if self.is_clean() {
            format!("{} invariant checks, 0 violations", self.checks)
        } else {
            format!(
                "{} invariant checks, {} VIOLATIONS (first: {})",
                self.checks,
                self.violations,
                self.first.first().map(String::as_str).unwrap_or("<none>")
            )
        }
    }

    /// Merges another report into this one (used by the runner to fold the
    /// architectural-digest check into the core's ledger).
    pub fn merge(&mut self, other: &SanitizeReport) {
        self.checks += other.checks;
        self.violations += other.violations;
        for m in &other.first {
            if self.first.len() < MAX_RETAINED {
                self.first.push(m.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_counts_and_caps_messages() {
        let mut r = SanitizeReport::default();
        r.check(true, || unreachable!());
        for i in 0..20 {
            r.check(false, || format!("violation {i}"));
        }
        assert_eq!(r.checks, 21);
        assert_eq!(r.violations, 20);
        assert_eq!(r.first.len(), MAX_RETAINED);
        assert!(!r.is_clean());
        assert!(r.summary().contains("VIOLATIONS"));
    }

    #[test]
    fn merge_folds_counts() {
        let mut a = SanitizeReport::default();
        a.check(true, String::new);
        let mut b = SanitizeReport::default();
        b.check(false, || "digest mismatch".into());
        a.merge(&b);
        assert_eq!(a.checks, 2);
        assert_eq!(a.violations, 1);
        assert_eq!(a.first, vec!["digest mismatch".to_string()]);
    }
}
