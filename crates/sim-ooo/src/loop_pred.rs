//! The loop predictor — the "L" of the paper's 8 KB TAGE-SC-L.
//!
//! Detects branches that govern loops with *stable trip counts* and, once
//! confident, predicts the exact exit iteration — something no
//! history-based predictor can do for long loops. This matters for kernels
//! with fixed inner-loop lengths (e.g. NAS-CG's constant row degree),
//! where the only misprediction left is the loop exit itself.

/// One loop-table entry.
#[derive(Clone, Copy, Debug, Default)]
struct LoopEntry {
    tag: u16,
    /// Trip count observed on the last completed loop execution.
    trip: u32,
    /// Taken iterations of the in-flight execution.
    current: u32,
    /// Confidence that `trip` repeats (saturating 0..=3).
    confidence: u8,
    valid: bool,
}

/// A small direct-mapped loop predictor.
///
/// # Example
///
/// ```
/// use sim_ooo::LoopPredictor;
/// let mut lp = LoopPredictor::new(6);
/// // A loop branch: taken 9 times, then not taken, repeatedly.
/// let pc = 0x88;
/// for _ in 0..5 {
///     for i in 0..10 {
///         lp.update(pc, i != 9);
///     }
/// }
/// // Confident now: predicts the exit exactly.
/// let mut correct = 0;
/// for i in 0..10 {
///     let p = lp.predict(pc);
///     if p == Some(i != 9) { correct += 1; }
///     lp.update(pc, i != 9);
/// }
/// assert_eq!(correct, 10);
/// ```
#[derive(Clone, Debug)]
pub struct LoopPredictor {
    entries: Vec<LoopEntry>,
    index_bits: u32,
}

impl LoopPredictor {
    /// Creates a predictor with `2^index_bits` entries (TAGE-SC-L uses a
    /// 64-entry table).
    pub fn new(index_bits: u32) -> Self {
        LoopPredictor { entries: vec![LoopEntry::default(); 1 << index_bits], index_bits }
    }

    fn slot(&self, pc: usize) -> usize {
        (pc ^ (pc >> self.index_bits as usize)) & ((1 << self.index_bits) - 1)
    }

    fn tag(pc: usize) -> u16 {
        ((pc >> 2) & 0x3FFF) as u16
    }

    /// Predicts the branch at `pc`, or `None` when the predictor has no
    /// confident loop for it (fall back to TAGE).
    pub fn predict(&self, pc: usize) -> Option<bool> {
        let e = &self.entries[self.slot(pc)];
        if !e.valid || e.tag != Self::tag(pc) || e.confidence < 3 || e.trip == 0 {
            return None;
        }
        // Taken while inside the loop; not-taken on the exit iteration.
        Some(e.current + 1 < e.trip + 1 && e.current < e.trip)
    }

    /// Serializes the table for a sampling checkpoint (little-endian,
    /// appended to `out`); [`LoopPredictor::from_state`] restores it.
    pub(crate) fn save_state(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.index_bits.to_le_bytes());
        for e in &self.entries {
            out.extend_from_slice(&e.tag.to_le_bytes());
            out.extend_from_slice(&e.trip.to_le_bytes());
            out.extend_from_slice(&e.current.to_le_bytes());
            out.push(e.confidence);
            out.push(e.valid as u8);
        }
    }

    /// Rebuilds a predictor from a [`LoopPredictor::save_state`] image,
    /// consuming bytes from `b` at `*off`. `None` on a malformed image.
    pub(crate) fn from_state(b: &[u8], off: &mut usize) -> Option<Self> {
        let mut take = |n: usize| -> Option<&[u8]> {
            let s = b.get(*off..*off + n)?;
            *off += n;
            Some(s)
        };
        let index_bits = u32::from_le_bytes(take(4)?.try_into().ok()?);
        if index_bits > 16 {
            return None;
        }
        let mut lp = LoopPredictor::new(index_bits);
        for e in &mut lp.entries {
            e.tag = u16::from_le_bytes(take(2)?.try_into().ok()?);
            e.trip = u32::from_le_bytes(take(4)?.try_into().ok()?);
            e.current = u32::from_le_bytes(take(4)?.try_into().ok()?);
            e.confidence = take(1)?[0];
            e.valid = match take(1)?[0] {
                0 => false,
                1 => true,
                _ => return None,
            };
        }
        Some(lp)
    }

    /// Trains on the actual outcome.
    pub fn update(&mut self, pc: usize, taken: bool) {
        let slot = self.slot(pc);
        let tag = Self::tag(pc);
        let e = &mut self.entries[slot];
        if !e.valid || e.tag != tag {
            // Allocate on a not-taken outcome (a candidate loop exit).
            if !taken {
                *e = LoopEntry { tag, trip: 0, current: 0, confidence: 0, valid: true };
            }
            return;
        }
        if taken {
            e.current = e.current.saturating_add(1);
            // A loop running far past its recorded trip count is not the
            // loop we learned: reset confidence.
            if e.confidence > 0 && e.current > e.trip {
                e.confidence = 0;
            }
        } else {
            if e.current == e.trip {
                e.confidence = (e.confidence + 1).min(3);
            } else {
                e.trip = e.current;
                e.confidence = 0;
            }
            e.current = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train(lp: &mut LoopPredictor, pc: usize, trip: usize, executions: usize) {
        for _ in 0..executions {
            for i in 0..=trip {
                lp.update(pc, i != trip);
            }
        }
    }

    #[test]
    fn learns_fixed_trip_count() {
        let mut lp = LoopPredictor::new(6);
        train(&mut lp, 0x40, 7, 5);
        // Now predict a full execution perfectly.
        for i in 0..=7 {
            assert_eq!(lp.predict(0x40), Some(i != 7), "iteration {i}");
            lp.update(0x40, i != 7);
        }
    }

    #[test]
    fn no_prediction_before_confidence() {
        let mut lp = LoopPredictor::new(6);
        train(&mut lp, 0x44, 5, 1);
        assert_eq!(lp.predict(0x44), None, "one execution is not enough");
    }

    #[test]
    fn varying_trip_counts_never_confident() {
        let mut lp = LoopPredictor::new(6);
        for trip in [3usize, 9, 4, 11, 2, 8, 5, 12] {
            train(&mut lp, 0x48, trip, 1);
        }
        assert_eq!(lp.predict(0x48), None);
    }

    #[test]
    fn relearnes_after_trip_change() {
        // Five executions to confidence: one allocates (on the first
        // not-taken), one learns the trip count, three confirm it.
        let mut lp = LoopPredictor::new(6);
        train(&mut lp, 0x4c, 6, 5);
        assert!(lp.predict(0x4c).is_some());
        // The loop length changes: must drop confidence, then relearn.
        train(&mut lp, 0x4c, 10, 1);
        assert_eq!(lp.predict(0x4c), None);
        train(&mut lp, 0x4c, 10, 4);
        assert!(lp.predict(0x4c).is_some());
    }

    #[test]
    fn tag_conflicts_do_not_mispredict() {
        let mut lp = LoopPredictor::new(2); // tiny: force conflicts
        train(&mut lp, 0x10, 4, 4);
        // A different PC mapping to the same slot must not inherit the loop.
        assert_eq!(lp.predict(0x10 + (1 << 2) * 4 * 16), None);
    }
}
