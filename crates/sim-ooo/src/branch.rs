//! A TAGE-family conditional branch predictor.
//!
//! The paper's Table 1 specifies the 8 KB TAGE-SC-L from CBP 2016. We
//! implement the TAGE core — a bimodal base predictor plus four
//! partially-tagged tables indexed with geometrically increasing history
//! lengths — plus the loop predictor, within a comparable storage budget;
//! the statistical corrector is omitted (documented delta in DESIGN.md).
//!
//! Branch *targets* in our ISA are static (encoded in the instruction), so
//! no BTB is modelled; a misprediction is always a direction misprediction.
//!
//! A [`LoopPredictor`](crate::LoopPredictor) (the "L" of TAGE-SC-L)
//! overrides TAGE for branches governing loops with stable trip counts.

/// Configuration of the TAGE predictor.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TageConfig {
    /// log2 entries of the bimodal base table.
    pub base_bits: u32,
    /// log2 entries of each tagged table.
    pub tagged_bits: u32,
    /// Tag width in bits.
    pub tag_bits: u32,
    /// History lengths of the tagged tables (geometric series).
    pub history_lengths: [u32; 4],
}

impl Default for TageConfig {
    fn default() -> Self {
        // ~8 KB total: 4K x 2b base (1 KB) + 4 x 1K x ~14b tagged (~7 KB).
        TageConfig {
            base_bits: 12,
            tagged_bits: 10,
            tag_bits: 9,
            history_lengths: [4, 16, 64, 130],
        }
    }
}

/// `"DVRT"`: magic prefix of a serialized predictor image
/// ([`TagePredictor::state_bytes`]).
pub const TAGE_STATE_MAGIC: u32 = 0x4456_5254;

#[derive(Clone, Copy, Debug, Default)]
struct TaggedEntry {
    tag: u16,
    /// 3-bit signed counter (-4..=3); taken if >= 0.
    ctr: i8,
    /// 2-bit useful counter.
    useful: u8,
}

/// The TAGE predictor.
///
/// # Example
///
/// ```
/// use sim_ooo::TagePredictor;
/// let mut bp = TagePredictor::default();
/// // A loop branch: taken 7 times, not-taken once, repeating.
/// let pc = 0x40;
/// let mut correct = 0;
/// let mut total = 0;
/// for _ in 0..200 {
///     for i in 0..8 {
///         let actual = i != 7;
///         let predicted = bp.predict(pc);
///         bp.update(pc, actual, predicted);
///         total += 1;
///         if predicted == actual { correct += 1; }
///     }
/// }
/// assert!(correct as f64 / total as f64 > 0.85);
/// ```
#[derive(Clone, Debug)]
pub struct TagePredictor {
    cfg: TageConfig,
    /// Bimodal: 2-bit counters (0..=3), taken if >= 2.
    base: Vec<u8>,
    tables: Vec<Vec<TaggedEntry>>,
    loop_pred: crate::loop_pred::LoopPredictor,
    /// Global history (newest outcome in bit 0).
    ghist: u128,
    /// For `useful`-bit aging.
    tick: u64,
    lookups: u64,
    mispredicts: u64,
}

impl Default for TagePredictor {
    fn default() -> Self {
        TagePredictor::new(TageConfig::default())
    }
}

impl TagePredictor {
    /// Creates a predictor with the given configuration.
    pub fn new(cfg: TageConfig) -> Self {
        TagePredictor {
            cfg,
            base: vec![2; 1 << cfg.base_bits], // weakly taken
            tables: (0..4).map(|_| vec![TaggedEntry::default(); 1 << cfg.tagged_bits]).collect(),
            loop_pred: crate::loop_pred::LoopPredictor::new(6),
            ghist: 0,
            tick: 0,
            lookups: 0,
            mispredicts: 0,
        }
    }

    fn fold_history(&self, bits: u32, out_bits: u32) -> u64 {
        let mut h = self.ghist & ((1u128 << bits.min(127)) - 1);
        let mut folded: u64 = 0;
        while h != 0 {
            folded ^= (h as u64) & ((1u64 << out_bits) - 1);
            h >>= out_bits;
        }
        folded
    }

    fn tagged_index(&self, pc: usize, table: usize) -> usize {
        let hl = self.cfg.history_lengths[table];
        let folded = self.fold_history(hl, self.cfg.tagged_bits);
        let idx = (pc as u64 ^ (pc as u64 >> self.cfg.tagged_bits) ^ folded)
            & ((1 << self.cfg.tagged_bits) - 1);
        idx as usize
    }

    fn tag(&self, pc: usize, table: usize) -> u16 {
        let hl = self.cfg.history_lengths[table];
        let folded = self.fold_history(hl, self.cfg.tag_bits);
        let folded2 = self.fold_history(hl, self.cfg.tag_bits - 1) << 1;
        ((pc as u64 ^ folded ^ folded2) & ((1 << self.cfg.tag_bits) - 1)) as u16
    }

    fn base_index(&self, pc: usize) -> usize {
        pc & ((1 << self.cfg.base_bits) - 1)
    }

    /// Finds the provider (longest matching tagged table), if any.
    fn provider(&self, pc: usize) -> Option<usize> {
        (0..4).rev().find(|&t| {
            let e = &self.tables[t][self.tagged_index(pc, t)];
            e.tag == self.tag(pc, t)
        })
    }

    /// Predicts the direction of the conditional branch at `pc`.
    ///
    /// A confident loop-predictor hit overrides TAGE (exact loop-exit
    /// prediction); otherwise the longest matching tagged table provides.
    pub fn predict(&mut self, pc: usize) -> bool {
        self.lookups += 1;
        if let Some(p) = self.loop_pred.predict(pc) {
            return p;
        }
        match self.provider(pc) {
            Some(t) => self.tables[t][self.tagged_index(pc, t)].ctr >= 0,
            None => self.base[self.base_index(pc)] >= 2,
        }
    }

    /// Updates the predictor with the actual outcome. `predicted` must be
    /// the value returned by the matching [`TagePredictor::predict`] call.
    pub fn update(&mut self, pc: usize, taken: bool, predicted: bool) {
        let mispredicted = predicted != taken;
        if mispredicted {
            self.mispredicts += 1;
        }
        self.loop_pred.update(pc, taken);

        let provider = self.provider(pc);

        // Update the provider (or base) counter.
        match provider {
            Some(t) => {
                let idx = self.tagged_index(pc, t);
                let base_pred = self.base[self.base_index(pc)] >= 2;
                let e = &mut self.tables[t][idx];
                e.ctr = (e.ctr + if taken { 1 } else { -1 }).clamp(-4, 3);
                // Useful bit: provider was correct and base would differ.
                if !mispredicted && (e.ctr >= 0) != base_pred {
                    e.useful = (e.useful + 1).min(3);
                }
            }
            None => {
                let idx = self.base_index(pc);
                let c = &mut self.base[idx];
                if taken {
                    *c = (*c + 1).min(3);
                } else {
                    *c = c.saturating_sub(1);
                }
            }
        }

        // On a misprediction, allocate in a longer-history table.
        if mispredicted {
            let start = provider.map_or(0, |t| t + 1);
            let mut allocated = false;
            for t in start..4 {
                let idx = self.tagged_index(pc, t);
                let tag = self.tag(pc, t);
                let e = &mut self.tables[t][idx];
                if e.useful == 0 {
                    *e = TaggedEntry { tag, ctr: if taken { 0 } else { -1 }, useful: 0 };
                    allocated = true;
                    break;
                }
            }
            if !allocated {
                // Decay useful bits so future allocations can succeed.
                for t in start..4 {
                    let idx = self.tagged_index(pc, t);
                    let e = &mut self.tables[t][idx];
                    e.useful = e.useful.saturating_sub(1);
                }
            }
        }

        // Periodic global aging of useful bits.
        self.tick += 1;
        if self.tick.is_multiple_of(256 * 1024) {
            for table in &mut self.tables {
                for e in table.iter_mut() {
                    e.useful >>= 1;
                }
            }
        }

        // Advance history.
        self.ghist = (self.ghist << 1) | (taken as u128);
    }

    /// Serializes the complete predictor state — configuration, bimodal
    /// base, tagged tables, loop predictor, global history, and counters —
    /// as a magic-prefixed little-endian image for a sampling checkpoint.
    ///
    /// [`TagePredictor::from_state_bytes`] restores it exactly: prediction
    /// behavior after restore is indistinguishable from the original.
    pub fn state_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(&TAGE_STATE_MAGIC.to_le_bytes());
        out.extend_from_slice(&self.cfg.base_bits.to_le_bytes());
        out.extend_from_slice(&self.cfg.tagged_bits.to_le_bytes());
        out.extend_from_slice(&self.cfg.tag_bits.to_le_bytes());
        for hl in self.cfg.history_lengths {
            out.extend_from_slice(&hl.to_le_bytes());
        }
        out.extend_from_slice(&self.ghist.to_le_bytes());
        out.extend_from_slice(&self.tick.to_le_bytes());
        out.extend_from_slice(&self.lookups.to_le_bytes());
        out.extend_from_slice(&self.mispredicts.to_le_bytes());
        out.extend_from_slice(&self.base);
        for table in &self.tables {
            for e in table {
                out.extend_from_slice(&e.tag.to_le_bytes());
                out.push(e.ctr as u8);
                out.push(e.useful);
            }
        }
        self.loop_pred.save_state(&mut out);
        out
    }

    /// Rebuilds a predictor from a [`TagePredictor::state_bytes`] image.
    /// Returns `None` if the image is truncated, has a bad magic number,
    /// an implausible configuration, or trailing bytes.
    pub fn from_state_bytes(b: &[u8]) -> Option<Self> {
        let mut off = 0usize;
        let mut take = |n: usize| -> Option<&[u8]> {
            let s = b.get(off..off + n)?;
            off += n;
            Some(s)
        };
        let magic = u32::from_le_bytes(take(4)?.try_into().ok()?);
        if magic != TAGE_STATE_MAGIC {
            return None;
        }
        let base_bits = u32::from_le_bytes(take(4)?.try_into().ok()?);
        let tagged_bits = u32::from_le_bytes(take(4)?.try_into().ok()?);
        let tag_bits = u32::from_le_bytes(take(4)?.try_into().ok()?);
        if base_bits > 24 || tagged_bits > 24 || tag_bits == 0 || tag_bits > 16 {
            return None;
        }
        let mut history_lengths = [0u32; 4];
        for hl in &mut history_lengths {
            *hl = u32::from_le_bytes(take(4)?.try_into().ok()?);
        }
        let cfg = TageConfig { base_bits, tagged_bits, tag_bits, history_lengths };
        let mut bp = TagePredictor::new(cfg);
        bp.ghist = u128::from_le_bytes(take(16)?.try_into().ok()?);
        bp.tick = u64::from_le_bytes(take(8)?.try_into().ok()?);
        bp.lookups = u64::from_le_bytes(take(8)?.try_into().ok()?);
        bp.mispredicts = u64::from_le_bytes(take(8)?.try_into().ok()?);
        bp.base.copy_from_slice(take(1 << base_bits)?);
        for t in 0..4 {
            for i in 0..1usize << tagged_bits {
                let tag = u16::from_le_bytes(take(2)?.try_into().ok()?);
                let ctr = take(1)?[0] as i8;
                let useful = take(1)?[0];
                bp.tables[t][i] = TaggedEntry { tag, ctr, useful };
            }
        }
        bp.loop_pred = crate::loop_pred::LoopPredictor::from_state(b, &mut off)?;
        if off != b.len() {
            return None;
        }
        Some(bp)
    }

    /// Number of predictions made.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }

    /// Number of mispredictions.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Misprediction rate (0 if no lookups yet).
    pub fn mispredict_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.lookups as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_pattern(bp: &mut TagePredictor, pc: usize, pattern: &[bool], reps: usize) -> f64 {
        let mut correct = 0usize;
        let mut total = 0usize;
        for _ in 0..reps {
            for &actual in pattern {
                let p = bp.predict(pc);
                bp.update(pc, actual, p);
                total += 1;
                if p == actual {
                    correct += 1;
                }
            }
        }
        correct as f64 / total as f64
    }

    #[test]
    fn always_taken_is_learned() {
        let mut bp = TagePredictor::default();
        let acc = run_pattern(&mut bp, 0x10, &[true], 1000);
        assert!(acc > 0.99, "accuracy {acc}");
    }

    #[test]
    fn short_loop_pattern_is_learned() {
        let mut bp = TagePredictor::default();
        // taken x7, not-taken x1 — needs history to nail the exit.
        let mut pattern = vec![true; 7];
        pattern.push(false);
        let acc = run_pattern(&mut bp, 0x20, &pattern, 500);
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn alternating_pattern_is_learned() {
        let mut bp = TagePredictor::default();
        let acc = run_pattern(&mut bp, 0x30, &[true, false], 1000);
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn random_pattern_is_hard() {
        let mut bp = TagePredictor::default();
        // Deterministic pseudo-random outcomes.
        let mut x: u64 = 0x9E3779B97F4A7C15;
        let pattern: Vec<bool> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1 == 1
            })
            .collect();
        let acc = run_pattern(&mut bp, 0x40, &pattern, 1);
        assert!(acc < 0.65, "random data should not be predictable, got {acc}");
    }

    #[test]
    fn distinct_pcs_do_not_destructively_interfere() {
        let mut bp = TagePredictor::default();
        // Train two opposite-biased branches simultaneously.
        let mut correct = 0;
        let mut total = 0;
        for _ in 0..2000 {
            for (pc, actual) in [(0x100usize, true), (0x204usize, false)] {
                let p = bp.predict(pc);
                bp.update(pc, actual, p);
                total += 1;
                if p == actual {
                    correct += 1;
                }
            }
        }
        assert!(correct as f64 / total as f64 > 0.98);
    }

    #[test]
    fn state_roundtrip_preserves_prediction_behavior() {
        let mut bp = TagePredictor::default();
        // Train a mix of patterns, including a stable-trip loop so the
        // loop predictor carries state too.
        let mut pattern = vec![true; 9];
        pattern.push(false);
        run_pattern(&mut bp, 0x20, &pattern, 200);
        run_pattern(&mut bp, 0x60, &[true, false], 300);
        let bytes = bp.state_bytes();
        let mut restored = TagePredictor::from_state_bytes(&bytes).expect("image parses");
        assert_eq!(restored.state_bytes(), bytes, "re-serialization is byte-identical");
        assert_eq!(restored.lookups(), bp.lookups());
        assert_eq!(restored.mispredicts(), bp.mispredicts());
        // Both predictors must stay in lockstep on fresh traffic.
        for rep in 0..50 {
            for (pc, &actual) in [(0x20usize, &pattern[rep % 10]), (0x60, &(rep % 2 == 0))] {
                let a = bp.predict(pc);
                let b = restored.predict(pc);
                assert_eq!(a, b, "pc {pc:#x} rep {rep}");
                bp.update(pc, actual, a);
                restored.update(pc, actual, b);
            }
        }
        assert_eq!(restored.state_bytes(), bp.state_bytes());
    }

    #[test]
    fn corrupt_state_images_are_rejected() {
        let bp = TagePredictor::default();
        let bytes = bp.state_bytes();
        assert!(TagePredictor::from_state_bytes(&bytes[1..]).is_none());
        assert!(TagePredictor::from_state_bytes(&bytes[..bytes.len() - 1]).is_none());
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(TagePredictor::from_state_bytes(&trailing).is_none());
        let mut bad_magic = bytes;
        bad_magic[0] ^= 0xFF;
        assert!(TagePredictor::from_state_bytes(&bad_magic).is_none());
    }

    #[test]
    fn stats_count() {
        let mut bp = TagePredictor::default();
        let p = bp.predict(0x8);
        bp.update(0x8, !p, p);
        assert_eq!(bp.lookups(), 1);
        assert_eq!(bp.mispredicts(), 1);
        assert_eq!(bp.mispredict_rate(), 1.0);
    }
}
