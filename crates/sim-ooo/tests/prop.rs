//! Property-based tests: the timing model must never change architectural
//! behaviour, for arbitrary generated programs.

use proptest::prelude::*;
use sim_isa::{AluOp, Asm, Cpu, Reg, SparseMemory};
use sim_mem::{HierarchyConfig, MemoryHierarchy};
use sim_ooo::{CoreConfig, NullEngine, OooCore};

/// A tiny structured program generator: a loop over an array with random
/// ALU ops, loads, stores, and a data-dependent branch.
#[derive(Clone, Debug)]
enum BodyOp {
    Alu(AluOp, u8, u8, u8),
    AluImm(AluOp, u8, u8, i16),
    Load(u8, u8),
    Store(u8, u8),
    SkipIfZero(u8),
}

fn body_op() -> impl Strategy<Value = BodyOp> {
    let op = prop::sample::select(vec![
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Slt,
        AluOp::Min,
        AluOp::Max,
    ]);
    let op2 = prop::sample::select(vec![AluOp::Add, AluOp::Xor, AluOp::Shr, AluOp::Shl]);
    prop_oneof![
        (op, 4u8..12, 4u8..12, 4u8..12).prop_map(|(o, d, a, b)| BodyOp::Alu(o, d, a, b)),
        (op2, 4u8..12, 4u8..12, any::<i16>()).prop_map(|(o, d, a, i)| BodyOp::AluImm(o, d, a, i)),
        (4u8..12, 4u8..12).prop_map(|(d, ix)| BodyOp::Load(d, ix)),
        (4u8..12, 4u8..12).prop_map(|(s, ix)| BodyOp::Store(s, ix)),
        (4u8..12).prop_map(BodyOp::SkipIfZero),
    ]
}

/// Builds a loop program over a 256-word array using the generated body.
fn build(body: &[BodyOp], iters: i64) -> sim_isa::Program {
    let base = Reg::R1;
    let i = Reg::R2;
    let n = Reg::R3;
    let c = Reg::R13;
    let mut asm = Asm::new();
    asm.li(base, 0x10_0000);
    asm.li(i, 0);
    asm.li(n, iters);
    let top = asm.here();
    // A striding load feeds the body.
    asm.ld8_idx(Reg::R4, base, i, 3);
    for op in body {
        match *op {
            BodyOp::Alu(o, d, a, b) => asm.alu(
                o,
                Reg::from_index(d as usize).unwrap(),
                Reg::from_index(a as usize).unwrap(),
                Reg::from_index(b as usize).unwrap(),
            ),
            BodyOp::AluImm(o, d, a, imm) => asm.alui(
                o,
                Reg::from_index(d as usize).unwrap(),
                Reg::from_index(a as usize).unwrap(),
                imm as i64,
            ),
            BodyOp::Load(d, ix) => {
                // Constrain the index into the array.
                let ixr = Reg::from_index(ix as usize).unwrap();
                let dr = Reg::from_index(d as usize).unwrap();
                asm.andi(Reg::R14, ixr, 255);
                asm.ld8_idx(dr, base, Reg::R14, 3);
            }
            BodyOp::Store(s, ix) => {
                let ixr = Reg::from_index(ix as usize).unwrap();
                let sr = Reg::from_index(s as usize).unwrap();
                asm.andi(Reg::R14, ixr, 255);
                asm.st8_idx(sr, base, Reg::R14, 3);
            }
            BodyOp::SkipIfZero(r) => {
                let rr = Reg::from_index(r as usize).unwrap();
                let skip = asm.label();
                asm.bez(rr, skip);
                asm.addi(Reg::R15, Reg::R15, 1);
                asm.bind(skip);
            }
        }
    }
    asm.addi(i, i, 1);
    asm.slt(c, i, n);
    asm.bnz(c, top);
    asm.halt();
    asm.finish().unwrap()
}

fn init_mem() -> SparseMemory {
    let mut mem = SparseMemory::new();
    let mut x: u64 = 0xABCD_EF01;
    for k in 0..256u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        mem.write_u64(0x10_0000 + 8 * k, x >> 16);
    }
    mem
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The OoO timing model commits exactly the functional execution:
    /// same final registers-visible memory, same instruction count.
    #[test]
    fn timing_matches_functional_semantics(
        body in prop::collection::vec(body_op(), 0..10),
        iters in 1i64..40,
    ) {
        let prog = build(&body, iters);

        // Functional reference.
        let mut fmem = init_mem();
        let mut cpu = Cpu::new();
        let fsteps = cpu.run(&prog, &mut fmem, 10_000_000).unwrap();
        prop_assert!(cpu.is_halted());

        // Timed run.
        let mut tmem = init_mem();
        let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
        let mut core = OooCore::new(CoreConfig::default());
        let stats = *core.run(&prog, &mut tmem, &mut hier, &mut NullEngine, u64::MAX).unwrap();

        prop_assert_eq!(stats.committed, fsteps);
        for k in 0..256u64 {
            prop_assert_eq!(
                tmem.read_u64(0x10_0000 + 8 * k),
                fmem.read_u64(0x10_0000 + 8 * k),
                "memory diverged at word {}", k
            );
        }
        // Sanity: cycles within physically plausible bounds.
        prop_assert!(stats.cycles >= stats.committed / 8);
    }

    /// Smaller ROBs never commit more IPC than larger ones on the same
    /// memory-bound program (monotonicity within noise).
    #[test]
    fn rob_size_monotonicity(iters in 30i64..60) {
        let body = vec![BodyOp::Load(5, 4), BodyOp::Load(6, 5), BodyOp::Alu(AluOp::Add, 7, 6, 5)];
        let prog = build(&body, iters);
        let run = |rob: usize| {
            let mut mem = init_mem();
            let mut hier = MemoryHierarchy::new(HierarchyConfig::default());
            let mut core = OooCore::new(CoreConfig::with_rob(rob));
            core.run(&prog, &mut mem, &mut hier, &mut NullEngine, u64::MAX).unwrap().ipc()
        };
        let small = run(32);
        let big = run(350);
        prop_assert!(big >= small * 0.95, "ROB 350 ({big}) slower than ROB 32 ({small})");
    }
}
