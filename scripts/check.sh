#!/usr/bin/env bash
# Repository gate: formatting, lints (warnings are errors), and the full
# test suite. Run before every push; CI mirrors these steps.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --check

echo "== cargo clippy --workspace --all-targets -- -D warnings =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo test -q =="
cargo test -q

echo "== fault smoke: dvr-sim fault/watchdog suite =="
cargo test -q -p dvr-sim --test faults

echo "== fault smoke: figures --keep-going with a forced-fail cell =="
# One cell is forced to panic; keep-going must exit 0, render the rest of
# the figure, and mark the failed cell in the output.
out="$(cargo run -q -p bench --bin figures -- fig9 --size test --instrs 10000 \
    --keep-going --force-fail 'bfs_KR/DVR' 2>/dev/null)"
echo "$out" | grep -q 'FAILED cell(s)' || { echo "missing failure marker"; exit 1; }
echo "$out" | grep -q 'bfs_KR/DVR' || { echo "failed cell not named"; exit 1; }
echo "$out" | grep -q 'NAS-IS' || { echo "remaining cells did not render"; exit 1; }

echo "== fault smoke: the same forced failure aborts without --keep-going =="
if cargo run -q -p bench --bin figures -- fig9 --size test --instrs 10000 \
    --force-fail 'bfs_KR/DVR' >/dev/null 2>&1; then
  echo "fail-fast run unexpectedly succeeded"; exit 1
fi

echo "== lint-workloads: dvrsim lint --all must report zero errors =="
lint_out="$(cargo run -q -p dvr-sim --bin dvrsim -- lint --all)"
echo "$lint_out" | grep -q ', 0 errors,' || { echo "lint reported errors:"; echo "$lint_out"; exit 1; }
echo "$lint_out" | grep -q '13 programs checked' || { echo "lint did not cover the full suite"; exit 1; }

echo "== lint-audit: dvrsim audit --all must PASS with zero unexplained =="
audit_out="$(cargo run -q -p dvr-sim --bin dvrsim -- audit --all)"
if echo "$audit_out" | grep -q 'FAIL'; then
  echo "audit reported unexplained divergences:"; echo "$audit_out"; exit 1
fi
[ "$(echo "$audit_out" | grep -c '^PASS$')" = 13 ] || { echo "audit did not cover the full suite"; exit 1; }

echo "== forbid-unsafe: every crate keeps #![forbid(unsafe_code)] =="
for lib in crates/*/src/lib.rs; do
  grep -q '^#!\[forbid(unsafe_code)\]' "$lib" || { echo "$lib: missing #![forbid(unsafe_code)]"; exit 1; }
done

echo "== lint-taint: the attack kernel must flag, the suite must not =="
# Finding the gadget is the tool working, so --attack must exit 1 and name
# the speculative-gather-gadget; the 13 secret-free benchmarks must be
# silent (exit 0).
if taint_out="$(cargo run -q -p dvr-sim --bin dvrsim -- lint-taint --attack)"; then
  echo "lint-taint --attack missed the gadget:"; echo "$taint_out"; exit 1
fi
echo "$taint_out" | grep -q 'speculative-gather-gadget' || { echo "gadget not named:"; echo "$taint_out"; exit 1; }
suite_taint="$(cargo run -q -p dvr-sim --bin dvrsim -- lint-taint --all || true)"
echo "$suite_taint" | grep -q '14 programs checked, 1 gadgets' \
    || { echo "lint-taint --all drifted (want 14 programs, 1 gadget):"; echo "$suite_taint"; exit 1; }

echo "== leak-audit: static and dynamic taint views must agree everywhere =="
leak_out="$(cargo run -q -p dvr-sim --bin dvrsim -- leak-audit --all)"
if echo "$leak_out" | grep -q 'FAIL'; then
  echo "leak-audit reported unexplained divergences:"; echo "$leak_out"; exit 1
fi
[ "$(echo "$leak_out" | grep -c '^PASS$')" = 14 ] || { echo "leak-audit did not cover the full suite"; exit 1; }
echo "$leak_out" | grep -q '1 gadgets dynamically confirmed' \
    || { echo "the attack gadget was not dynamically confirmed:"; echo "$leak_out"; exit 1; }

echo "== bounds-lint: dvrsim lint --all --bounds must prove the suite =="
bounds_out="$(cargo run -q -p dvr-sim --bin dvrsim -- lint --all --bounds)"
echo "$bounds_out" | grep -q ', 0 errors,' || { echo "bounds lint reported errors:"; echo "$bounds_out"; exit 1; }
echo "$bounds_out" | grep -q '13 programs checked' || { echo "bounds lint did not cover the full suite"; exit 1; }

echo "== bounds-audit: static and dynamic bounds views must agree everywhere =="
bounds_audit_out="$(cargo run -q -p dvr-sim --bin dvrsim -- bounds-audit --all)"
if echo "$bounds_audit_out" | grep -q 'FAIL'; then
  echo "bounds-audit reported unexplained divergences:"; echo "$bounds_audit_out"; exit 1
fi
[ "$(echo "$bounds_audit_out" | grep -c '^PASS$')" = 14 ] || { echo "bounds-audit did not cover the full suite"; exit 1; }
echo "$bounds_audit_out" | grep -q ' 0 unexplained, 0 static errors' \
    || { echo "bounds-audit summary drifted:"; echo "$bounds_audit_out"; exit 1; }

echo "== bounds-audit: the out-of-bounds kernel must flag and be confirmed =="
# Flagging the escape is the tool working, so --oob must exit 1 with both
# static errors confirmed by the dynamic oracle.
if oob_out="$(cargo run -q -p dvr-sim --bin dvrsim -- bounds-audit --oob)"; then
  echo "bounds-audit --oob missed the out-of-bounds kernel:"; echo "$oob_out"; exit 1
fi
echo "$oob_out" | grep -q 'confirmed-oob: 2 of 2' \
    || { echo "static errors not dynamically confirmed:"; echo "$oob_out"; exit 1; }

echo "== report-determinism: no host-order maps or wall clock in serializers =="
# Report renderers/serializers must be byte-stable across hosts: FxHashMap
# with sorted output vectors only (no std HashMap iteration order), and no
# Instant::now (wall clock lives in the runner, stripped before diffing).
ser_files="$(grep -rl 'fn to_json\|fn render' crates/*/src)"
for f in $ser_files; do
  if grep -q 'std::collections::HashMap' "$f"; then
    echo "$f: std::collections::HashMap in a serialization path"; exit 1
  fi
  if grep -q 'Instant::now' "$f"; then
    echo "$f: Instant::now in a serialization path"; exit 1
  fi
done

echo "== sanitize smoke: sanitized run is clean and byte-identical =="
# host_seconds / sim_instrs_per_host_second / host_minstr_per_sec are wall
# clock; strip them before diffing — everything else must match to the byte.
strip_clock() { sed -E 's/"host_seconds":[0-9.eE+-]+,"sim_instrs_per_host_second":[0-9.eE+-]+,"host_minstr_per_sec":[0-9.eE+-]+,//'; }
plain="$(cargo run -q -p dvr-sim --bin dvrsim -- --bench NAS-IS --size test \
    --technique dvr --instrs 20000 --json | strip_clock)"
sane="$(cargo run -q -p dvr-sim --bin dvrsim -- --bench NAS-IS --size test \
    --technique dvr --instrs 20000 --json --sanitize | strip_clock)"
[ "$plain" = "$sane" ] || { echo "sanitized JSON diverged from plain run"; exit 1; }

echo "== sanitize smoke: one figure cell under the sanitizer =="
san_err="$(cargo run -q -p bench --bin figures -- fig9 --size test --instrs 10000 \
    --sanitize 2>&1 >/dev/null)"
echo "$san_err" | grep -q ' 0 violations' || { echo "sanitizer reported violations:"; echo "$san_err"; exit 1; }

echo "== multicore: sanitized 2-core mix byte-identical across --threads 1/4 =="
# The mix itself runs on the deterministic discrete-event scheduler;
# --threads only fans out the solo baselines, so stdout (mix JSON +
# evaluation line) must not depend on it — or on the re-run. --sanitize
# covers the per-core ledgers and the shared-L3 provenance sweeper (any
# violation exits non-zero and fails the stage via set -e).
mix_args="mix --spec bfs:dvr,nas-is:ooo --size test --instrs 20000 --solo --sanitize --json"
m1="$(cargo run -q -p dvr-sim --bin dvrsim -- $mix_args --threads 1 2>/dev/null)"
m4="$(cargo run -q -p dvr-sim --bin dvrsim -- $mix_args --threads 4 2>/dev/null)"
m1b="$(cargo run -q -p dvr-sim --bin dvrsim -- $mix_args --threads 1 2>/dev/null)"
[ "$m1" = "$m4" ] || { echo "mix JSON diverged across thread counts"; exit 1; }
[ "$m1" = "$m1b" ] || { echo "mix JSON diverged across re-runs"; exit 1; }
echo "$m1" | grep -q '"aggregate_ipc"' || { echo "mix JSON missing aggregate_ipc"; exit 1; }
echo "$m1" | grep -q '"fairness"' || { echo "mix JSON missing the evaluation line"; exit 1; }

echo "== scheduler-determinism: no wall clock or float keys in the scheduler =="
# The event queue is keyed by (tick, component id) — integers only. A
# float-keyed BinaryHeap (NaN-unordered) or any wall-clock read in the
# scheduler or the mix path would break the byte-identity the multicore
# stage just checked.
for f in crates/sim-multi/src/*.rs crates/dvr-sim/src/multi.rs; do
  if grep -q 'Instant::now' "$f"; then
    echo "$f: Instant::now in the deterministic scheduler path"; exit 1
  fi
  if grep -Eq 'BinaryHeap<[^>]*f(32|64)' "$f"; then
    echo "$f: float-keyed BinaryHeap breaks deterministic event ordering"; exit 1
  fi
done

echo "== sample smoke: sampled IPC within its CI of the exact IPC =="
# `dvrsim sample` exits non-zero when any cell's 95% CI misses the exact
# IPC, so the exit status IS the check.
cargo run -q -p dvr-sim --bin dvrsim -- sample --bench bfs >/dev/null

echo "== sample smoke: sampled runs byte-identical across --threads 1/4 =="
s1="$(cargo run -q -p dvr-sim --bin dvrsim -- sample --all --no-exact --size test \
    --instrs 60000 --json --threads 1 | strip_clock)"
s4="$(cargo run -q -p dvr-sim --bin dvrsim -- sample --all --no-exact --size test \
    --instrs 60000 --json --threads 4 | strip_clock)"
[ "$s1" = "$s4" ] || { echo "sampled JSON diverged across thread counts"; exit 1; }

echo "== sample-parallel: byte-identity across --threads 1/4 x --jobs 0/2 =="
# The checkpoint-parallel dispatch grid: every combination of in-process
# threads and worker processes must produce the same bytes as the
# sequential driver (s1 above).
for combo in "--threads 1 --jobs 2" "--threads 4 --jobs 2"; do
  sj="$(cargo run -q -p dvr-sim --bin dvrsim -- sample --all --no-exact --size test \
      --instrs 60000 --json $combo | strip_clock)"
  [ "$s1" = "$sj" ] || { echo "sampled JSON diverged for $combo"; exit 1; }
done

echo "== sample-parallel: worker-protocol round-trip =="
# Emit one checkpoint orchestrator-style, feed it to a real sample-worker,
# and check the integer-JSON result line parses and names its period.
# (tests/sample_parallel.rs does this in-process; this smokes the CLI.)
worker_out="$(cargo run -q -p dvr-sim --bin dvrsim -- sample --bench bfs --size test \
    --instrs 60000 --no-exact --json --jobs 2 | strip_clock)"
echo "$worker_out" | grep -q '"sampling":' || { echo "worker-backed sample produced no sampling section"; exit 1; }
seq_out="$(cargo run -q -p dvr-sim --bin dvrsim -- sample --bench bfs --size test \
    --instrs 60000 --no-exact --json | strip_clock)"
[ "$worker_out" = "$seq_out" ] || { echo "worker-backed sample diverged from sequential"; exit 1; }

echo "== sample-parallel: wall-clock trajectory line (BENCH json) =="
# On a single-core host the speedup probes self-skip: the stderr line then
# reads "sample probe: skipped..." and the JSON field carries the
# "skipped_single_core" marker — both greps below accept either form.
bench_dir="$(mktemp -d)"
probe_err="$(cargo run -q -p bench --bin figures -- fig9 --size test --instrs 60000 \
    --sample --bench-json "$bench_dir" 2>&1 >/dev/null)"
echo "$probe_err" | grep -q 'sample probe:' || { echo "no sample-probe wall-clock line"; exit 1; }
grep -q '"sample_probe"' "$bench_dir/BENCH_fig9.json" || { echo "BENCH json missing sample_probe"; exit 1; }
grep -q '"host_minstr_per_sec"' "$bench_dir/BENCH_fig9.json" || { echo "BENCH json missing throughput"; exit 1; }
rm -rf "$bench_dir"

echo "== sweep smoke: corrupt cache entry is quarantined, never served =="
# The cold sweep populates the cache and flips a byte in the first stored
# entry (--inject-sweep flip=1). The next run must detect the bad checksum,
# quarantine the entry, recompute the cell, and still match byte-for-byte.
sweep_dir="$(mktemp -d)"
sweep_grid="--bench bfs,nas-is --technique ooo,dvr --size test --instrs 8000"
cargo run -q -p dvr-sim --bin dvrsim -- sweep $sweep_grid \
    --out "$sweep_dir/cold" --cache "$sweep_dir/cache" \
    --inject-sweep flip=1 >/dev/null 2>"$sweep_dir/cold.err"
corrupt_err="$(cargo run -q -p dvr-sim --bin dvrsim -- sweep $sweep_grid \
    --out "$sweep_dir/corrupt" --cache "$sweep_dir/cache" 2>&1 >/dev/null)"
echo "$corrupt_err" | grep -q 'cache_corrupt=1' || { echo "flipped entry not detected"; exit 1; }
echo "$corrupt_err" | grep -q 'warning\[cache_corrupt\]' || { echo "no quarantine warning"; exit 1; }
cmp -s "$sweep_dir/cold/summary.json" "$sweep_dir/corrupt/summary.json" \
    || { echo "corrupt-cache sweep summary diverged"; exit 1; }
ls "$sweep_dir/cache/quarantine" | grep -q '.' || { echo "quarantine directory is empty"; exit 1; }

echo "== sweep smoke: warm cache run is byte-identical, all hits =="
# The quarantined entry was recomputed and re-stored above, so this run
# must serve the whole grid from the cache without touching a simulator.
warm_err="$(cargo run -q -p dvr-sim --bin dvrsim -- sweep $sweep_grid \
    --out "$sweep_dir/warm" --cache "$sweep_dir/cache" 2>&1 >/dev/null)"
cmp -s "$sweep_dir/cold/summary.json" "$sweep_dir/warm/summary.json" \
    || { echo "warm sweep summary diverged from cold"; exit 1; }
echo "$warm_err" | grep -q 'cache_hits=4' || { echo "warm sweep did not hit the cache"; exit 1; }

echo "== sweep smoke: killed worker is retried and the summary still matches =="
kill_err="$(cargo run -q -p dvr-sim --bin dvrsim -- sweep $sweep_grid \
    --out "$sweep_dir/kill" --no-cache --jobs 2 --inject-sweep kill=1 2>&1 >/dev/null)"
cmp -s "$sweep_dir/cold/summary.json" "$sweep_dir/kill/summary.json" \
    || { echo "worker-kill sweep summary diverged"; exit 1; }
echo "$kill_err" | grep -q 'computed=4' \
    || { echo "worker-kill sweep did not recover all cells"; exit 1; }

echo "== sweep smoke: --gc keeps the live grid =="
gc_out="$(cargo run -q -p dvr-sim --bin dvrsim -- sweep $sweep_grid \
    --cache "$sweep_dir/cache" --gc)"
echo "$gc_out" | grep -q 'kept=4' || { echo "gc did not keep the grid:"; echo "$gc_out"; exit 1; }
rm -rf "$sweep_dir"

echo "All checks passed."
