//! Sampled-simulation acceptance tests: architectural checkpoints
//! round-trip on every benchmark, sampled confidence intervals contain
//! the exact IPC, and sampled runs are byte-identical regardless of
//! host-thread count.

use dvr_sim::{parallel_map, simulate, simulate_sampled, SampleConfig, SimConfig, Technique};
use sim_isa::{Cpu, CpuCheckpoint, MemoryCheckpoint, SparseMemory};
use workloads::{Benchmark, GraphInput, SizeClass, Workload};

fn build(b: Benchmark) -> Workload {
    b.build(b.is_gap().then_some(GraphInput::Kr), SizeClass::Small, 42)
}

/// Acceptance criterion: saving a checkpoint mid-run, serializing it to
/// bytes, restoring, and resuming is indistinguishable from never having
/// stopped — registers, retirement count, PC, and the full memory image
/// all match the uninterrupted run, on all 13 benchmarks.
#[test]
fn checkpoint_roundtrip_is_exact_on_every_benchmark() {
    const TOTAL: u64 = 80_000;
    const SPLIT: u64 = 37_411; // deliberately unaligned mid-run point

    for b in Benchmark::ALL {
        let wl = build(b);

        // Uninterrupted reference run.
        let mut ref_cpu = Cpu::new();
        let mut ref_mem = wl.mem.clone();
        ref_cpu.run(&wl.prog, &mut ref_mem, TOTAL).unwrap();

        // Run to the split point and checkpoint.
        let mut cpu = Cpu::new();
        let mut mem = wl.mem.clone();
        let done = cpu.run(&wl.prog, &mut mem, SPLIT).unwrap();
        let cpu_ck = cpu.checkpoint();
        let mem_ck = mem.checkpoint_delta(&wl.mem);
        drop((cpu, mem));

        // Serialization must be lossless and deterministic.
        let cpu_bytes = cpu_ck.to_bytes();
        let mem_bytes = mem_ck.to_bytes();
        let cpu_ck = CpuCheckpoint::from_bytes(&cpu_bytes).expect("cpu image parses");
        let mem_ck = MemoryCheckpoint::from_bytes(&mem_bytes).expect("mem image parses");
        assert_eq!(cpu_bytes, cpu_ck.to_bytes(), "{}: cpu image round-trips", wl.name);
        assert_eq!(mem_bytes, mem_ck.to_bytes(), "{}: mem image round-trips", wl.name);

        // Restore and resume to the same total.
        let mut cpu = Cpu::from_checkpoint(&cpu_ck);
        let mut mem = SparseMemory::restore_from(&wl.mem, &mem_ck);
        assert_eq!(cpu.retired(), done, "{}: restored retirement count", wl.name);
        cpu.run(&wl.prog, &mut mem, TOTAL - done).unwrap();

        assert_eq!(cpu.regs(), ref_cpu.regs(), "{}: registers diverged", wl.name);
        assert_eq!(cpu.pc(), ref_cpu.pc(), "{}: PC diverged", wl.name);
        assert_eq!(cpu.retired(), ref_cpu.retired(), "{}: retirement diverged", wl.name);
        assert_eq!(mem.checksum(), ref_mem.checksum(), "{}: memory diverged", wl.name);
        assert_eq!(mem.page_count(), ref_mem.page_count(), "{}: page count diverged", wl.name);
    }
}

/// Acceptance criterion: for all 13 benchmarks at small size, the sampled
/// 95% confidence interval contains the IPC of the exact run under the
/// default sampling configuration.
#[test]
fn sampled_ci_contains_exact_ipc_on_every_benchmark() {
    let mut misses = Vec::new();
    for b in Benchmark::ALL {
        let wl = build(b);
        let cfg = SimConfig::new(Technique::Baseline).with_max_instructions(200_000);
        let exact = simulate(&wl, &cfg);
        let sampled = simulate_sampled(&wl, &cfg, &SampleConfig::default());
        assert!(sampled.outcome.is_complete(), "{}: {:?}", wl.name, sampled.outcome);
        let s = sampled.sampling.as_ref().expect("sampling section");
        if (exact.ipc - s.ipc_mean).abs() > s.ipc_ci95 {
            misses.push(format!(
                "{}: exact {:.4} outside sampled {:.4} +/- {:.4} (n={})",
                wl.name, exact.ipc, s.ipc_mean, s.ipc_ci95, s.intervals
            ));
        }
    }
    assert!(misses.is_empty(), "CI misses:\n{}", misses.join("\n"));
}

/// Reports with the wall-clock fields zeroed: everything that remains
/// must be bit-identical across repeated runs and host-thread counts.
fn normalized_json(mut r: dvr_sim::SimReport) -> String {
    r.host_seconds = 0.0;
    r.to_json()
}

fn sampled_cell(i: usize) -> String {
    let b = Benchmark::ALL[i];
    let wl = build(b);
    let cfg = SimConfig::new(Technique::Baseline).with_max_instructions(60_000);
    normalized_json(simulate_sampled(&wl, &cfg, &SampleConfig::default()))
}

/// Sampling must be a pure function of (workload, config, seed): the same
/// cells dispatched on 1 and 4 worker threads produce byte-identical
/// reports once wall-clock fields are stripped.
#[test]
fn sampled_runs_are_byte_identical_across_thread_counts() {
    let n = Benchmark::ALL.len();
    let serial = parallel_map(n, 1, sampled_cell);
    let threaded = parallel_map(n, 4, sampled_cell);
    assert_eq!(serial, threaded);
    // And across repeated invocations on the same thread count.
    assert_eq!(serial, parallel_map(n, 4, sampled_cell));
}

/// DVR's runahead subthread must quiesce cleanly at interval boundaries:
/// a sampled DVR run completes, is deterministic, and still reports the
/// memory-level parallelism the technique exists to create.
#[test]
fn sampled_dvr_quiesces_at_interval_boundaries() {
    let wl = Benchmark::Bfs.build(Some(GraphInput::Kr), SizeClass::Small, 42);
    let cfg = SimConfig::new(Technique::Dvr).with_max_instructions(100_000);
    let a = simulate_sampled(&wl, &cfg, &SampleConfig::default());
    let b = simulate_sampled(&wl, &cfg, &SampleConfig::default());
    assert!(a.outcome.is_complete(), "{:?}", a.outcome);
    assert_eq!(a.sampling, b.sampling);
    assert_eq!(a.core.cycles, b.core.cycles);
    assert!(a.mlp > 0.0);
}
