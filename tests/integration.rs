//! Cross-crate integration tests: the whole stack (ISA → core → hierarchy →
//! engines → workloads) driven through the public `dvr-sim` API.

use dvr_sim::{simulate, SimConfig, Technique};
use workloads::{Benchmark, GraphInput, SizeClass};

const INSTRS: u64 = 40_000;

fn cfg(t: Technique) -> SimConfig {
    SimConfig::new(t).with_max_instructions(INSTRS)
}

#[test]
fn every_technique_completes_on_bfs() {
    let wl = Benchmark::Bfs.build(Some(GraphInput::Ur), SizeClass::Test, 7);
    for t in [
        Technique::Baseline,
        Technique::Pre,
        Technique::Imp,
        Technique::Vr,
        Technique::Dvr,
        Technique::DvrOffload,
        Technique::DvrDiscovery,
        Technique::Oracle,
    ] {
        let r = simulate(&wl, &cfg(t));
        assert!(r.ipc > 0.0, "{} produced zero IPC", t.name());
        assert!(r.core.committed > 0);
        assert!(r.core.cycles > 0);
    }
}

#[test]
fn simulation_is_deterministic_end_to_end() {
    let wl = Benchmark::Sssp.build(Some(GraphInput::Kr), SizeClass::Test, 3);
    let a = simulate(&wl, &cfg(Technique::Dvr));
    let b = simulate(&wl, &cfg(Technique::Dvr));
    assert_eq!(a.core.cycles, b.core.cycles);
    assert_eq!(a.mem.dram_reads(), b.mem.dram_reads());
    assert_eq!(a.engine.episodes, b.engine.episodes);
}

#[test]
fn timing_never_perturbs_architectural_results() {
    // The same workload must compute the same memory values under a purely
    // functional run and under every timing configuration.
    let wl = Benchmark::NasIs.build(None, SizeClass::Test, 5);
    let hist = wl.region("hist");

    // Functional reference.
    let mut fmem = wl.mem.clone();
    let mut cpu = sim_isa::Cpu::new();
    cpu.run(&wl.prog, &mut fmem, 50_000_000).expect("functional run");
    assert!(cpu.is_halted());

    for t in [Technique::Baseline, Technique::Vr, Technique::Dvr] {
        let mut mem = wl.mem.clone();
        let mut hier = dvr_sim::MemoryHierarchy::new(dvr_sim::HierarchyConfig::default());
        let mut core = dvr_sim::OooCore::new(dvr_sim::CoreConfig::default());
        match t {
            Technique::Vr => {
                let mut e = dvr_sim::VrEngine::default();
                core.run(&wl.prog, &mut mem, &mut hier, &mut e, u64::MAX).expect("run failed");
            }
            Technique::Dvr => {
                let mut e = dvr_sim::DvrEngine::default();
                core.run(&wl.prog, &mut mem, &mut hier, &mut e, u64::MAX).expect("run failed");
            }
            _ => {
                let mut e = dvr_sim::NullEngine;
                core.run(&wl.prog, &mut mem, &mut hier, &mut e, u64::MAX).expect("run failed");
            }
        }
        for k in (0..1024u64).step_by(17) {
            assert_eq!(
                mem.read_u64(hist + 8 * k),
                fmem.read_u64(hist + 8 * k),
                "{} diverged from functional execution at hist[{k}]",
                t.name()
            );
        }
    }
}

#[test]
fn stats_are_internally_consistent() {
    let wl = Benchmark::Camel.build(None, SizeClass::Test, 11);
    let r = simulate(&wl, &cfg(Technique::Dvr));
    // Demand hit buckets partition demand accesses.
    let buckets: u64 = r.mem.demand_hits.iter().sum::<u64>() + r.mem.demand_inflight;
    assert_eq!(buckets, r.mem.demand_loads + r.mem.demand_stores);
    // IPC is committed/cycles.
    assert!((r.ipc - r.core.committed as f64 / r.core.cycles as f64).abs() < 1e-12);
    // Prefetch accounting balances.
    for src in dvr_sim::PrefetchSource::ALL {
        let used: u64 = r.mem.prefetch_found[src.index()].iter().sum();
        assert_eq!(
            used + r.mem.prefetch_unused[src.index()],
            r.mem.prefetch_issued[src.index()],
            "prefetch accounting for {src:?}"
        );
    }
}

#[test]
fn all_workloads_build_at_every_size() {
    for size in [SizeClass::Test, SizeClass::Small] {
        for b in Benchmark::ALL {
            let wl = b.build(None, size, 1);
            assert!(!wl.prog.is_empty(), "{} empty at {size:?}", wl.name);
            assert!(!wl.regions.is_empty());
        }
    }
}

#[test]
fn gap_benchmarks_accept_every_input() {
    for b in Benchmark::GAP {
        for g in GraphInput::ALL {
            let wl = b.build(Some(g), SizeClass::Test, 2);
            let r =
                simulate(&wl, &SimConfig::new(Technique::Baseline).with_max_instructions(5_000));
            assert!(r.core.committed > 0, "{} on {}", b.name(), g.name());
        }
    }
}

#[test]
fn instruction_budget_is_respected() {
    let wl = Benchmark::Pr.build(Some(GraphInput::Kr), SizeClass::Test, 9);
    let r = simulate(&wl, &SimConfig::new(Technique::Baseline).with_max_instructions(12_345));
    // The core stops within one commit-width of the budget.
    assert!(r.core.committed >= 12_345 && r.core.committed < 12_345 + 5);
}
