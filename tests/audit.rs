//! Static-vs-dynamic Discovery audit tests: every benchmark's audit report
//! is pinned by a golden file with zero unexplained divergences, and the
//! event-trace hook is timing-neutral — a traced run's `SimReport`
//! serializes byte-identically to an untraced one (the `--sanitize`
//! convention from the sanitizer and fault-injection PRs).

use dvr_sim::{audit_benchmark, simulate, SimConfig, Technique};
use workloads::{Benchmark, SizeClass};

/// The parameters the golden files were generated under (`dvrsim audit`
/// defaults).
const SIZE: SizeClass = SizeClass::Test;
const SEED: u64 = 42;
const INSTRS: u64 = 60_000;

/// Golden-file slug for a benchmark ("NAS-CG" -> "nas_cg").
fn slug(b: Benchmark) -> String {
    b.name().to_lowercase().replace('-', "_")
}

#[test]
fn audit_matches_golden_files_with_zero_unexplained() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden");
    let bless = std::env::var_os("BLESS").is_some();
    for b in Benchmark::ALL {
        let report = audit_benchmark(b, SIZE, SEED, INSTRS);
        assert_eq!(
            report.unexplained(),
            0,
            "{}: every divergence must carry a typed justification:\n{}",
            b.name(),
            report.render()
        );
        assert!(report.is_clean());
        let got = report.render();
        let path = format!("{dir}/audit_{}.txt", slug(b));
        if bless {
            std::fs::write(&path, &got).expect("write golden");
            continue;
        }
        let want = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("{path}: {e} (BLESS=1 to generate)"));
        assert_eq!(
            got,
            want,
            "{}: audit report drifted; run with BLESS=1 to re-bless after review",
            b.name()
        );
    }
}

#[test]
fn audit_finds_real_discovery_activity() {
    // The audit is vacuous if the trace never records anything. The
    // flagship dependent-load kernels must both predict and observe
    // vectorization, and the predictions must agree.
    for b in [Benchmark::Camel, Benchmark::NasIs, Benchmark::RandomAccess] {
        let r = audit_benchmark(b, SIZE, SEED, INSTRS);
        let expected: Vec<usize> =
            r.chains.iter().filter(|c| c.expect_spawn).map(|c| c.stride_pc).collect();
        assert!(!expected.is_empty(), "{}: no static spawn roots", b.name());
        for pc in &expected {
            let spawned = r.dynamic.iter().any(|(p, d)| p == pc && d.spawns + d.covered_skips > 0);
            assert!(spawned, "{}: predicted root pc={pc} never spawned\n{}", b.name(), r.render());
        }
    }
}

#[test]
fn trace_hook_is_timing_neutral() {
    // Tracing must observe, never perturb: the report of a traced run is
    // byte-identical (modulo wall clock) to an untraced one.
    let wl = Benchmark::Camel.build(None, SizeClass::Small, SEED);
    let cfg = SimConfig::new(Technique::Dvr).with_max_instructions(50_000);
    let plain = simulate(&wl, &cfg);
    let traced = simulate(&wl, &cfg.with_dvr_trace(true));
    assert!(plain.dvr_trace.is_none());
    let trace = traced.dvr_trace.as_ref().expect("trace attached when enabled");
    assert!(!trace.events.is_empty(), "Camel must exercise Discovery");
    assert_eq!(plain.core.cycles, traced.core.cycles, "tracing changed timing");
    let strip = |mut r: dvr_sim::SimReport| {
        r.host_seconds = 0.0; // wall clock is the only nondeterministic field
        r.to_json()
    };
    assert_eq!(strip(plain), strip(traced), "tracing must not perturb the report");
}

#[test]
fn trace_only_attaches_to_dvr_runs() {
    // Requesting a trace under a technique with no Discovery engine is a
    // no-op, not an error.
    let wl = Benchmark::Bfs.build(None, SIZE, SEED);
    let cfg =
        SimConfig::new(Technique::Baseline).with_max_instructions(20_000).with_dvr_trace(true);
    let r = simulate(&wl, &cfg);
    assert!(r.dvr_trace.is_none());
    assert!(r.core.cycles > 0);
}

#[test]
fn audit_json_is_well_formed_and_consistent() {
    let r = audit_benchmark(Benchmark::NasIs, SIZE, SEED, INSTRS);
    let json = r.to_json();
    assert!(json.starts_with("{\"bench\":\"NAS-IS\""), "{json}");
    assert!(json.ends_with(&format!("\"unexplained\":{}}}", r.unexplained())), "{json}");
    // Every divergence kind renders with its kebab-case name.
    for d in &r.divergences {
        assert!(json.contains(&format!("\"kind\":\"{}\"", d.kind)), "{json}");
    }
}
