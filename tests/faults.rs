//! Fault-injection and watchdog test suite: proves the simulator degrades
//! gracefully under injected memory-system faults, that reports stay
//! well-formed on every failure path, and that prefetch-path faults are
//! timing-only (architectural state and committed counts are bit-identical
//! to a fault-free run).

use dvr_sim::{
    simulate, simulate_all_parallel, DvrEngine, FaultConfig, FaultKind, HierarchyConfig,
    MemoryHierarchy, OooCore, RunOutcome, SimConfig, SimError, Technique,
};
use workloads::{Benchmark, GraphInput, SizeClass};

/// Dropping every demand-miss response wedges the ROB head; the watchdog
/// must fire with a snapshot that names the stuck state.
#[test]
fn watchdog_fires_on_a_dropped_response_with_a_diagnostic_snapshot() {
    let wl = Benchmark::NasIs.build(None, SizeClass::Test, 1);
    let cfg = SimConfig::new(Technique::Baseline)
        .with_max_instructions(100_000)
        .with_faults(FaultConfig::seeded(9).with_drop(1))
        .with_watchdog_cycles(20_000);
    let r = simulate(&wl, &cfg);
    match &r.outcome {
        RunOutcome::Failed(SimError::Deadlock(snap)) => {
            assert!(snap.cycle >= 20_000, "watchdog threshold respected: {snap:?}");
            assert!(snap.cycle - snap.last_commit_cycle >= 20_000);
            assert!(snap.rob_len > 0, "a wedged run has ROB entries: {snap:?}");
            assert!(snap.mshrs_in_use >= 1, "the dropped miss holds its MSHR: {snap:?}");
            let shown = format!("{}", SimError::Deadlock(snap.clone()));
            assert!(shown.contains("deadlock"), "{shown}");
        }
        other => panic!("expected a deadlock, got {other:?}"),
    }
    assert_eq!(r.outcome.kind(), "deadlock");
    assert!(r.mem.injected_drops >= 1, "the drop must be accounted");
    // The report is still fully populated and serializable.
    let j = r.to_json();
    assert!(j.contains("\"outcome\":\"deadlock\""), "{j}");
    assert!(j.starts_with('{') && j.ends_with('}'));
}

/// A fatal injected fault surfaces as a typed error with the faulting
/// line, and partial statistics remain coherent.
#[test]
fn fatal_fault_fails_the_run_with_the_fault_event() {
    let wl = Benchmark::NasIs.build(None, SizeClass::Test, 1);
    let cfg = SimConfig::new(Technique::Baseline)
        .with_max_instructions(100_000)
        .with_faults(FaultConfig::seeded(3).with_fatal_at(50));
    let r = simulate(&wl, &cfg);
    match r.outcome.error() {
        Some(SimError::InjectedFault(ev)) => {
            assert_eq!(ev.kind, FaultKind::Fatal);
            assert!(ev.cycle > 0);
        }
        other => panic!("expected an injected fault, got {other:?}"),
    }
    assert_eq!(r.mem.injected_fatal, 1);
    assert!(r.core.committed > 0, "partial progress up to the fault is reported");
    assert!(r.core.committed < 100_000, "the fault cut the run short");
}

/// Poisoned (dropped) prefetches are timing-only by construction: the
/// committed instruction count and the final architectural memory state
/// must be bit-identical to a fault-free run.
#[test]
fn prefetch_faults_never_change_architectural_state() {
    let wl = Benchmark::Camel.build(None, SizeClass::Test, 3);
    let run = |fault: Option<FaultConfig>| {
        let mut mem = wl.mem.clone();
        let mut hier =
            MemoryHierarchy::new(HierarchyConfig { fault, ..HierarchyConfig::default() });
        let mut core = OooCore::new(dvr_sim::CoreConfig::default());
        let mut engine = DvrEngine::new(dvr_sim::DvrConfig::default());
        let stats =
            *core.run(&wl.prog, &mut mem, &mut hier, &mut engine, 50_000).expect("run completes");
        (stats.committed, mem.checksum(), hier.stats().injected_poisons)
    };
    let (clean_committed, clean_checksum, zero_poisons) = run(None);
    assert_eq!(zero_poisons, 0);
    // Poison every other prefetch: aggressive enough to matter.
    let (committed, checksum, poisons) = run(Some(FaultConfig::seeded(11).with_poison(2)));
    assert!(poisons > 0, "the workload must actually issue prefetches for this test to bite");
    assert_eq!(committed, clean_committed, "poison must not change committed counts");
    assert_eq!(checksum, clean_checksum, "poison must not change architectural state");
}

/// DRAM delay faults are also timing-only: the run completes, slower, with
/// identical architectural results.
#[test]
fn delay_faults_slow_the_run_but_complete_it() {
    let wl = Benchmark::NasIs.build(None, SizeClass::Test, 2);
    let base_cfg = SimConfig::new(Technique::Baseline).with_max_instructions(30_000);
    let clean = simulate(&wl, &base_cfg);
    let delayed = simulate(&wl, &base_cfg.with_faults(FaultConfig::seeded(5).with_delay(2, 3_000)));
    assert!(clean.outcome.is_complete());
    assert!(delayed.outcome.is_complete(), "{:?}", delayed.outcome);
    assert!(delayed.mem.injected_delays > 0, "delays must fire");
    assert_eq!(delayed.core.committed, clean.core.committed);
    assert!(
        delayed.core.cycles > clean.core.cycles,
        "3000-cycle delays must cost time: {} vs {}",
        delayed.core.cycles,
        clean.core.cycles
    );
}

/// Fault injection is seeded and per-run: the same seed produces
/// byte-identical reports for every worker-thread count.
#[test]
fn same_seed_is_byte_identical_across_thread_counts() {
    let wl = Benchmark::Bfs.build(Some(GraphInput::Kr), SizeClass::Test, 7);
    let fault = FaultConfig::seeded(21).with_delay(4, 500).with_poison(3);
    let cfgs: Vec<SimConfig> = [Technique::Baseline, Technique::Vr, Technique::Dvr]
        .into_iter()
        .map(|t| SimConfig::new(t).with_max_instructions(20_000).with_faults(fault))
        .collect();
    let render = |threads: usize| -> Vec<String> {
        simulate_all_parallel(&wl, &cfgs, threads)
            .into_iter()
            .map(|mut r| {
                // Host time is the one legitimately nondeterministic field.
                r.host_seconds = 0.0;
                r.to_json()
            })
            .collect()
    };
    let serial = render(1);
    for threads in [2, 4] {
        assert_eq!(serial, render(threads), "fault injection must not depend on threads");
    }
    assert!(serial.iter().all(|j| j.contains("\"outcome\":\"complete\"")), "{serial:?}");
}

/// Different seeds genuinely change where faults land.
#[test]
fn different_seeds_change_fault_placement() {
    let wl = Benchmark::NasIs.build(None, SizeClass::Test, 2);
    let cycles_with = |seed: u64| {
        let cfg = SimConfig::new(Technique::Baseline)
            .with_max_instructions(30_000)
            .with_faults(FaultConfig::seeded(seed).with_delay(3, 2_000));
        simulate(&wl, &cfg).core.cycles
    };
    let a = cycles_with(1);
    assert!((1..=16).map(cycles_with).any(|c| c != a), "16 seeds, all identical timing");
}

/// The watchdog stays quiet on healthy runs at its default threshold.
#[test]
fn healthy_runs_do_not_trip_the_default_watchdog() {
    let wl = Benchmark::Camel.build(None, SizeClass::Test, 5);
    for t in [Technique::Baseline, Technique::Vr, Technique::Dvr] {
        let r = simulate(&wl, &SimConfig::new(t).with_max_instructions(30_000));
        assert!(r.outcome.is_complete(), "{t:?}: {:?}", r.outcome);
    }
}
