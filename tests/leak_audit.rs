//! Secret-leakage audit tests: every benchmark's leak-audit report (plus
//! the bundled gather-attack kernel's) is pinned by a golden file with
//! zero unexplained divergences, the attack kernel's gadget is confirmed
//! dynamically under both runahead engines and never under the baseline,
//! and the taint oracle is timing-neutral — an armed run's `SimReport`
//! serializes byte-identically to an unarmed one under every technique.

use dvr_sim::{leak_audit_attack, leak_audit_benchmark, simulate, SimConfig, Technique};
use workloads::{gather_attack, Benchmark, SizeClass};

/// The parameters the golden files were generated under (`dvrsim
/// leak-audit` defaults).
const SIZE: SizeClass = SizeClass::Test;
const SEED: u64 = 42;
const INSTRS: u64 = 60_000;

fn golden_dir() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden")
}

fn check_golden(slug: &str, got: &str) {
    let bless = std::env::var_os("BLESS").is_some();
    let path = format!("{}/leak_audit_{slug}.txt", golden_dir());
    if bless {
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: {e} (BLESS=1 to generate)"));
    assert_eq!(got, want, "{slug}: leak-audit report drifted; BLESS=1 to re-bless after review");
}

#[test]
fn leak_audit_matches_golden_files_with_zero_unexplained() {
    for b in Benchmark::ALL {
        let r = leak_audit_benchmark(b, SIZE, SEED, INSTRS);
        assert_eq!(r.unexplained(), 0, "{}:\n{}", b.name(), r.render());
        assert!(r.is_clean());
        // The suite's benchmarks declare no secrets, so both dynamic
        // sides short-circuit and the static pass must stay silent.
        assert!(r.gadgets.is_empty(), "{}: unexpected gadget", b.name());
        assert!(r.fills.is_none() && r.arch.is_none());
        check_golden(&b.name().to_lowercase().replace('-', "_"), &r.render());
    }
    let attack = leak_audit_attack(SIZE, SEED, INSTRS);
    assert_eq!(attack.unexplained(), 0, "attack:\n{}", attack.render());
    check_golden("gather_attack", &attack.render());
}

#[test]
fn attack_gadget_is_confirmed_by_vr_and_dvr_but_not_baseline() {
    let r = leak_audit_attack(SIZE, SEED, INSTRS);
    assert!(!r.gadgets.is_empty(), "static side must flag the B[S[i]] gather");
    assert_eq!(r.confirmed_gadgets(), r.gadgets.len(), "\n{}", r.render());
    let fills = r.fills.as_ref().expect("dynamic side ran");
    for (t, s) in fills {
        let total: u64 = s.per_pc.iter().map(|&(_, n, _)| n).sum();
        match t {
            Technique::Baseline => {
                assert_eq!(total, 0, "baseline recorded secret-tainted fills:\n{}", r.render())
            }
            _ => {
                assert!(total > 0, "{} recorded no secret-tainted fills:\n{}", t.name(), r.render())
            }
        }
    }
    // The architectural replay agrees: the secret is read and transmitted.
    let arch = r.arch.as_ref().expect("architectural replay ran");
    assert!(arch.secret_reads > 0 && arch.tainted_addr_accesses > 0);
    for &g in &r.gadgets {
        assert!(arch.transmit_pcs.iter().any(|&(pc, n)| pc == g && n > 0));
    }
}

#[test]
fn taint_oracle_is_timing_neutral_for_every_technique() {
    // Arming the oracle must observe, never perturb: the armed run's
    // report is byte-identical (modulo wall clock) under all eight
    // techniques, on the one workload where the tracker actually works.
    let wl = gather_attack(SIZE, SEED);
    let strip = |mut r: dvr_sim::SimReport| {
        r.host_seconds = 0.0; // wall clock is the only nondeterministic field
        r.to_json()
    };
    let all = [
        Technique::Baseline,
        Technique::Pre,
        Technique::Imp,
        Technique::Vr,
        Technique::Dvr,
        Technique::DvrOffload,
        Technique::DvrDiscovery,
        Technique::Oracle,
    ];
    for t in all {
        let cfg = SimConfig::new(t).with_max_instructions(50_000);
        let plain = simulate(&wl, &cfg);
        let armed = simulate(&wl, &cfg.with_taint_oracle(true));
        assert!(plain.taint_fills.is_none());
        assert!(armed.taint_fills.is_some(), "{}: log attaches when armed", t.name());
        assert_eq!(plain.core.cycles, armed.core.cycles, "{}: oracle changed timing", t.name());
        assert_eq!(strip(plain), strip(armed), "{}: oracle perturbed the report", t.name());
    }
}

#[test]
fn leak_audit_json_is_well_formed_and_consistent() {
    let r = leak_audit_attack(SIZE, SEED, INSTRS);
    let json = r.to_json();
    assert!(json.starts_with("{\"bench\":\"gather-attack\""), "{json}");
    assert!(json.ends_with(&format!("\"unexplained\":{}}}", r.unexplained())), "{json}");
    assert!(json.contains(&format!("\"confirmed_gadgets\":{}", r.confirmed_gadgets())), "{json}");
    for d in &r.divergences {
        assert!(json.contains(&format!("\"kind\":\"{}\"", d.kind)), "{json}");
    }
    // A secret-free benchmark reports the skipped dynamic side as null.
    let clean = leak_audit_benchmark(Benchmark::Bfs, SIZE, SEED, INSTRS);
    assert!(clean.to_json().contains("\"fills\":null"), "{}", clean.to_json());
}
