//! Crash-safety acceptance tests for `dvrsim sweep` and `dvrsim serve`:
//! a sweep interrupted at any point — SIGKILL mid-flight, injected abort
//! after N journal records, a torn journal tail, killed or hung workers,
//! corrupted cache entries — must resume without recomputing settled
//! cells and render a `summary.json` byte-identical to an uninterrupted
//! run's.

use std::path::PathBuf;
use std::process::{Command, Output};

use proptest::prelude::*;

/// The grid every test sweeps: 2 benchmarks x 2 techniques at test
/// scale (BFS carries the KR input; NAS-IS takes none).
const GRID: [&str; 6] = ["--bench", "bfs,nas-is", "--technique", "ooo,dvr", "--size", "test"];
const GRID_CELLS: usize = 4;

struct SweepDirs {
    root: PathBuf,
}

impl SweepDirs {
    fn new(tag: &str) -> Self {
        let root = std::env::temp_dir().join(format!("dvrsim-sweep-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        std::fs::create_dir_all(&root).expect("create test scratch");
        SweepDirs { root }
    }

    fn out(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    fn summary(&self, name: &str) -> String {
        std::fs::read_to_string(self.out(name).join("summary.json")).expect("summary.json exists")
    }
}

impl Drop for SweepDirs {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.root);
    }
}

/// Runs `dvrsim sweep <GRID> --instrs 8000 <extra>` with its own out dir.
fn sweep(dirs: &SweepDirs, out: &str, extra: &[&str]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dvrsim"));
    cmd.arg("sweep").args(GRID).args(["--instrs", "8000"]);
    cmd.args(["--out", dirs.out(out).to_str().unwrap()]);
    if !extra.contains(&"--cache") {
        cmd.arg("--no-cache");
    }
    cmd.args(extra);
    cmd.output().expect("spawn dvrsim sweep")
}

fn assert_ok(out: &Output) {
    assert!(
        out.status.success(),
        "sweep failed\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}

fn stderr_stat(out: &Output, key: &str) -> u64 {
    let stderr = String::from_utf8_lossy(&out.stderr);
    let line = stderr.lines().find(|l| l.starts_with("sweep: cells=")).unwrap_or_else(|| {
        panic!("no sweep stats line in stderr: {stderr}");
    });
    line.split_whitespace()
        .find_map(|tok| tok.strip_prefix(&format!("{key}=")))
        .unwrap_or_else(|| panic!("no {key}= in stats line: {line}"))
        .parse()
        .expect("numeric stat")
}

#[test]
fn sigkilled_sweep_resumes_byte_identical() {
    let dirs = SweepDirs::new("sigkill");
    let clean = sweep(&dirs, "clean", &[]);
    assert_ok(&clean);
    let reference = dirs.summary("clean");

    // Launch the same grid in a fresh out dir, poll the journal until at
    // least one cell has settled, then SIGKILL the process mid-sweep.
    let out_dir = dirs.out("killed");
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dvrsim"));
    cmd.arg("sweep").args(GRID).args(["--instrs", "8000", "--no-cache"]);
    cmd.args(["--out", out_dir.to_str().unwrap()]);
    cmd.stdout(std::process::Stdio::null()).stderr(std::process::Stdio::null());
    let mut child = cmd.spawn().expect("spawn sweep to kill");
    let journal = out_dir.join("journal.dvrj");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(120);
    loop {
        let settled = std::fs::read_to_string(&journal)
            .map(|s| s.lines().filter(|l| l.contains(" done ")).count())
            .unwrap_or(0);
        if settled >= 1 {
            break;
        }
        if let Some(status) = child.try_wait().expect("try_wait") {
            // Too fast to interrupt on this host: the run finished clean,
            // which still exercises the resume path below (full replay).
            assert!(status.success());
            break;
        }
        assert!(std::time::Instant::now() < deadline, "no journal progress within 120s");
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let _ = child.kill(); // SIGKILL on unix
    let _ = child.wait();

    let resumed = sweep(&dirs, "killed", &[]);
    assert_ok(&resumed);
    assert_eq!(
        dirs.summary("killed"),
        reference,
        "summary after SIGKILL + resume must be byte-identical"
    );
}

#[test]
fn torn_journal_tail_is_dropped_and_resume_matches() {
    let dirs = SweepDirs::new("torn");
    let clean = sweep(&dirs, "clean", &[]);
    assert_ok(&clean);

    // trunc=2 tears bytes off the 2nd journal append and aborts; the
    // replay must drop the torn record and recompute only that cell.
    let torn = sweep(&dirs, "torn", &["--inject-sweep", "trunc=2,trunc-bytes=5"]);
    assert!(!torn.status.success(), "torn run reports the abort");
    let resumed = sweep(&dirs, "torn", &[]);
    assert_ok(&resumed);
    assert!(stderr_stat(&resumed, "replay_dropped_bytes") > 0, "tail was truncated");
    assert_eq!(stderr_stat(&resumed, "journal") as usize, 1, "first record survived");
    assert_eq!(dirs.summary("torn"), dirs.summary("clean"));
}

#[test]
fn killed_worker_is_retried_transparently() {
    let dirs = SweepDirs::new("killworker");
    let clean = sweep(&dirs, "clean", &[]);
    assert_ok(&clean);
    let injured = sweep(&dirs, "injured", &["--jobs", "2", "--inject-sweep", "kill=1"]);
    assert_ok(&injured);
    assert!(
        stderr_stat(&injured, "spawns") > GRID_CELLS as u64,
        "the killed worker must have been respawned"
    );
    assert_eq!(dirs.summary("injured"), dirs.summary("clean"));
}

#[test]
fn hung_worker_times_out_and_the_retry_succeeds() {
    let dirs = SweepDirs::new("hang");
    let clean = sweep(&dirs, "clean", &[]);
    assert_ok(&clean);
    let hung =
        sweep(&dirs, "hung", &["--jobs", "1", "--timeout-ms", "1000", "--inject-sweep", "hang=1"]);
    assert_ok(&hung);
    assert_eq!(dirs.summary("hung"), dirs.summary("clean"));
}

#[test]
fn exhausted_retries_surface_a_typed_outcome_with_keep_going() {
    let dirs = SweepDirs::new("keepgoing");
    // A deterministic per-cell injury: the first spawn hangs, the
    // timeout kills it, and with zero retries the cell fails typed.
    let failed = sweep(
        &dirs,
        "exhausted",
        &[
            "--jobs",
            "1",
            "--retries",
            "0",
            "--timeout-ms",
            "300",
            "--keep-going",
            "--inject-sweep",
            "hang=1",
        ],
    );
    assert_ok(&failed);
    let summary = dirs.summary("exhausted");
    assert!(summary.contains("\"status\":\"failed\""), "typed failure rendered: {summary}");
    assert!(summary.contains("\"kind\":\"timeout\""), "timeout kind rendered: {summary}");
    assert!(summary.contains("\"status\":\"ok\""), "healthy cells still rendered");

    // Without --keep-going the same injury must fail the sweep — after
    // journaling the failure so a resume does not recompute it.
    let strict = sweep(
        &dirs,
        "strict",
        &["--jobs", "1", "--retries", "0", "--timeout-ms", "300", "--inject-sweep", "hang=1"],
    );
    assert!(!strict.status.success(), "strict mode propagates the failure");
}

#[test]
fn corrupt_cache_entry_is_quarantined_and_recomputed() {
    let dirs = SweepDirs::new("corrupt");
    let cache = dirs.root.join("cache");
    let cache_arg = cache.to_str().unwrap().to_string();
    let cold = sweep(&dirs, "cold", &["--cache", &cache_arg]);
    assert_ok(&cold);
    assert_eq!(stderr_stat(&cold, "cache_stores") as usize, GRID_CELLS);
    let reference = dirs.summary("cold");

    // Flip one byte in every stored entry, then sweep with a fresh
    // journal: every probe must detect the corruption, quarantine the
    // entry, and recompute — never serve corrupt bytes.
    let mut flipped = 0;
    for entry in std::fs::read_dir(&cache).expect("cache dir") {
        let path = entry.expect("entry").path();
        if path.extension().is_some_and(|e| e == "res") {
            let mut raw = std::fs::read(&path).expect("read entry");
            let mid = raw.len() / 2;
            raw[mid] ^= 0x01;
            std::fs::write(&path, raw).expect("rewrite entry");
            flipped += 1;
        }
    }
    assert_eq!(flipped, GRID_CELLS);

    let warm = sweep(&dirs, "recomputed", &["--cache", &cache_arg]);
    assert_ok(&warm);
    assert_eq!(stderr_stat(&warm, "cache_corrupt") as usize, GRID_CELLS);
    assert_eq!(stderr_stat(&warm, "cache_hits"), 0, "corrupt entries never count as hits");
    assert_eq!(stderr_stat(&warm, "computed") as usize, GRID_CELLS);
    assert_eq!(dirs.summary("recomputed"), reference);
    let quarantined = std::fs::read_dir(cache.join("quarantine")).expect("quarantine dir").count();
    assert_eq!(quarantined, GRID_CELLS, "every corrupt entry lands in quarantine");

    // The repaired cache now serves everything.
    let served = sweep(&dirs, "served", &["--cache", &cache_arg]);
    assert_ok(&served);
    assert_eq!(stderr_stat(&served, "cache_hits") as usize, GRID_CELLS);
    assert_eq!(dirs.summary("served"), reference);
}

#[test]
fn warm_cache_run_is_byte_identical_without_a_journal() {
    let dirs = SweepDirs::new("warm");
    let cache = dirs.root.join("cache");
    let cache_arg = cache.to_str().unwrap().to_string();
    let cold = sweep(&dirs, "cold", &["--cache", &cache_arg]);
    assert_ok(&cold);
    let warm = sweep(&dirs, "warm", &["--cache", &cache_arg]);
    assert_ok(&warm);
    assert_eq!(stderr_stat(&warm, "cache_hits") as usize, GRID_CELLS);
    assert_eq!(stderr_stat(&warm, "computed"), 0);
    assert_eq!(dirs.summary("warm"), dirs.summary("cold"));
}

proptest! {
    // Each case reruns the binary several times; keep the count small but
    // meaningful (abort points cover the whole journal).
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Crash recovery, property-style: abort the sweep after a random
    /// number of journal records (possibly tearing the last one), resume,
    /// and require the final summary byte-identical to the clean run's.
    #[test]
    fn aborted_sweep_always_resumes_byte_identical(
        abort_after in 1usize..(GRID_CELLS + 1),
        tear in any::<bool>(),
        tear_bytes in 1u64..12,
    ) {
        let dirs = SweepDirs::new(&format!("prop-{abort_after}-{tear}-{tear_bytes}"));
        let clean = sweep(&dirs, "clean", &[]);
        assert_ok(&clean);

        let spec = if tear {
            format!("trunc={abort_after},trunc-bytes={tear_bytes}")
        } else {
            format!("abort={abort_after}")
        };
        let aborted = sweep(&dirs, "crashed", &["--inject-sweep", &spec]);
        prop_assert!(!aborted.status.success(), "injected crash reports failure");

        let resumed = sweep(&dirs, "crashed", &[]);
        assert_ok(&resumed);
        let replayed = stderr_stat(&resumed, "journal") as usize;
        let computed = stderr_stat(&resumed, "computed") as usize;
        prop_assert_eq!(replayed + computed, GRID_CELLS);
        if !tear {
            // A clean abort keeps all settled records; resume must not
            // recompute any of them.
            prop_assert_eq!(replayed, abort_after);
        }
        prop_assert_eq!(dirs.summary("crashed"), dirs.summary("clean"));
    }
}

#[cfg(unix)]
#[test]
fn serve_socket_round_trips_and_serves_the_cache() {
    use std::io::{BufRead, BufReader, Write};
    use std::os::unix::net::UnixStream;

    let dirs = SweepDirs::new("serve");
    let socket = dirs.root.join("dvr.sock");
    let cache = dirs.root.join("cache");
    let mut child = Command::new(env!("CARGO_BIN_EXE_dvrsim"))
        .args(["serve", "--socket", socket.to_str().unwrap(), "--cache", cache.to_str().unwrap()])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn dvrsim serve");
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while !socket.exists() {
        assert!(std::time::Instant::now() < deadline, "serve never bound its socket");
        std::thread::sleep(std::time::Duration::from_millis(10));
    }

    let stream = UnixStream::connect(&socket).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut stream = stream;
    let mut ask = |req: &str| -> String {
        stream.write_all(format!("{req}\n").as_bytes()).expect("send");
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply");
        line.trim().to_string()
    };

    assert_eq!(ask("ping"), "{\"ok\":true}");
    let cell = "bench=bfs,input=kr,technique=dvr,size=test,seed=42,instrs=8000";
    let fresh = ask(&format!("run {cell}"));
    assert!(fresh.starts_with("{\"cached\":false,"), "first request computes: {fresh}");
    let cached = ask(&format!("run {cell}"));
    assert!(cached.starts_with("{\"cached\":true,"), "second request is served: {cached}");
    assert_eq!(
        fresh.trim_start_matches("{\"cached\":false,"),
        cached.trim_start_matches("{\"cached\":true,"),
        "cached and fresh replies carry the identical report"
    );
    let bad = ask("run bench=nope");
    assert!(bad.contains("\"kind\":\"bad_cell\""), "{bad}");
    let stats = ask("stats");
    assert!(stats.contains("\"served\":3"), "{stats}");
    assert_eq!(ask("shutdown"), "{\"ok\":true}");

    let status = child.wait().expect("serve exits after shutdown");
    assert!(status.success());
    assert!(!socket.exists(), "socket removed on shutdown");
}

#[test]
fn gc_retains_the_grid_and_purges_strays() {
    let dirs = SweepDirs::new("gc");
    let cache = dirs.root.join("cache");
    let cache_arg = cache.to_str().unwrap().to_string();
    let cold = sweep(&dirs, "cold", &["--cache", &cache_arg]);
    assert_ok(&cold);
    // A stray entry (wrong key) must be collected; grid entries survive.
    let stray = cache.join("00000000000000000000000000000000.res");
    std::fs::write(&stray, b"junk").expect("write stray");

    let mut cmd = Command::new(env!("CARGO_BIN_EXE_dvrsim"));
    cmd.arg("sweep").args(GRID).args(["--instrs", "8000", "--gc", "--cache", &cache_arg]);
    let out = cmd.output().expect("gc run");
    assert_ok(&out);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("kept=4") && stdout.contains("removed=1"), "{stdout}");
    assert!(!stray.exists());

    let warm = sweep(&dirs, "warm", &["--cache", &cache_arg]);
    assert_ok(&warm);
    assert_eq!(stderr_stat(&warm, "cache_hits") as usize, GRID_CELLS, "gc kept the grid");
}
