//! Bounds-audit tests: every benchmark's static-vs-dynamic bounds report
//! (plus the gather-attack kernel's) is pinned by a golden file with zero
//! unexplained divergences and zero static errors, the out-of-bounds
//! gather kernel is flagged statically and both escapes are confirmed by
//! the dynamic oracle, and the bounds oracle itself is timing-neutral —
//! an armed run's `SimReport` serializes byte-identically to a plain one
//! under every technique.

use dvr_sim::{
    bounds_audit_attack, bounds_audit_benchmark, bounds_audit_oob, simulate, SimConfig, Technique,
};
use workloads::{gather_attack, oob_gather, Benchmark, SizeClass};

/// The parameters the golden files were generated under (`dvrsim
/// bounds-audit` defaults).
const SIZE: SizeClass = SizeClass::Test;
const SEED: u64 = 42;
const INSTRS: u64 = 60_000;

fn golden_dir() -> &'static str {
    concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden")
}

fn check_golden(slug: &str, got: &str) {
    let bless = std::env::var_os("BLESS").is_some();
    let path = format!("{}/bounds_audit_{slug}.txt", golden_dir());
    if bless {
        std::fs::write(&path, got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: {e} (BLESS=1 to generate)"));
    assert_eq!(got, want, "{slug}: bounds-audit report drifted; BLESS=1 to re-bless after review");
}

#[test]
fn bounds_audit_matches_golden_files_with_zero_unexplained() {
    for b in Benchmark::ALL {
        let r = bounds_audit_benchmark(b, SIZE, SEED, INSTRS);
        assert_eq!(r.unexplained(), 0, "{}:\n{}", b.name(), r.render());
        assert_eq!(r.static_errors(), 0, "{}:\n{}", b.name(), r.render());
        assert!(r.is_clean());
        // Every suite benchmark declares regions, so both dynamic sides
        // run and the architectural replay must stay inside the intervals.
        assert!(r.arch.is_some() && r.spec.is_some(), "{}: oracle skipped", b.name());
        check_golden(&b.name().to_lowercase().replace('-', "_"), &r.render());
    }
    let attack = bounds_audit_attack(SIZE, SEED, INSTRS);
    assert_eq!(attack.unexplained(), 0, "attack:\n{}", attack.render());
    assert_eq!(attack.static_errors(), 0);
    check_golden("gather_attack", &attack.render());
}

#[test]
fn oob_kernel_is_flagged_statically_and_confirmed_dynamically() {
    let r = bounds_audit_oob(SIZE, SEED, INSTRS);
    // Static side: the unproven spawn-chain gather escalates to an error
    // and the epilogue's one-past-the-end constant load is out-of-bounds.
    assert!(r.static_errors() >= 2, "\n{}", r.render());
    // Dynamic side: every static error is observed escaping at runtime.
    assert_eq!(r.confirmed_oob(), r.static_errors(), "\n{}", r.render());
    // The two sides *agree*, so the audit itself has nothing unexplained —
    // the CLI still exits nonzero on the static errors.
    assert_eq!(r.unexplained(), 0, "\n{}", r.render());
    check_golden("oob_gather", &r.render());
}

#[test]
fn bounds_oracle_is_timing_neutral_for_every_technique() {
    // Arming the oracle must observe, never perturb: the armed run's
    // report is byte-identical (modulo wall clock) under all eight
    // techniques, and cycle counts match exactly.
    for wl in [gather_attack(SIZE, SEED), oob_gather(SIZE, SEED)] {
        let strip = |mut r: dvr_sim::SimReport| {
            r.host_seconds = 0.0; // wall clock is the only nondeterministic field
            r.to_json()
        };
        let all = [
            Technique::Baseline,
            Technique::Pre,
            Technique::Imp,
            Technique::Vr,
            Technique::Dvr,
            Technique::DvrOffload,
            Technique::DvrDiscovery,
            Technique::Oracle,
        ];
        for t in all {
            let cfg = SimConfig::new(t).with_max_instructions(50_000);
            let plain = simulate(&wl, &cfg);
            let armed = simulate(&wl, &cfg.with_bounds_oracle(true));
            assert!(plain.spec_extents.is_none());
            assert!(armed.spec_extents.is_some(), "{}: extents attach when armed", t.name());
            assert_eq!(plain.core.cycles, armed.core.cycles, "{}: oracle changed timing", t.name());
            assert_eq!(strip(plain), strip(armed), "{}: oracle perturbed the report", t.name());
        }
    }
}

#[test]
fn bounds_audit_json_is_well_formed_and_consistent() {
    let r = bounds_audit_oob(SIZE, SEED, INSTRS);
    let json = r.to_json();
    assert!(json.starts_with("{\"bench\":\"oob-gather\""), "{json}");
    assert!(json.ends_with(&format!("\"unexplained\":{}}}", r.unexplained())), "{json}");
    assert!(json.contains(&format!("\"confirmed_oob\":{}", r.confirmed_oob())), "{json}");
    assert!(json.contains(&format!("\"static_errors\":{}", r.static_errors())), "{json}");
    for d in &r.divergences {
        assert!(json.contains(&format!("\"kind\":\"{}\"", d.kind)), "{json}");
    }
}
