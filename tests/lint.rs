//! Static-analysis (sim-lint) integration tests: every shipped workload
//! must lint error-free, hand-written bad programs must trigger the
//! expected typed diagnostics, the Discovery-Mode loop classification is
//! pinned by a golden file, and a full simulation under `--sanitize` must
//! be violation-free and byte-identical to the unsanitized run.

use dvr_sim::sim_lint::{analyze, analyze_instrs, LintKind, LoopClass};
use dvr_sim::{simulate, SimConfig, Technique};
use sim_isa::{parse_program, Instr};
use workloads::{Benchmark, SizeClass};

/// The parameters the golden file was generated under (`dvrsim lint --all`
/// defaults). The program text of a benchmark kernel does not depend on the
/// size class — only its data does — but pin both for reproducibility.
const SIZE: SizeClass = SizeClass::Test;
const SEED: u64 = 42;

#[test]
fn every_workload_lints_error_free() {
    for b in Benchmark::ALL {
        let wl = b.build(None, SIZE, SEED);
        let r = analyze(&wl.prog);
        assert!(
            r.is_clean(),
            "{}: {} lint errors: {:?}",
            wl.name,
            r.errors(),
            r.diags.iter().map(|d| d.render(Some(&wl.prog))).collect::<Vec<_>>()
        );
        assert!(!r.loops.is_empty(), "{}: kernel should contain at least one loop", wl.name);
    }
}

#[test]
fn uninitialized_register_read_is_flagged_at_its_source_line() {
    let p = parse_program(
        "; r7 is never written before the read\n\
         li r1, 64\n\
         add r2, r7, r1\n\
         halt",
    )
    .unwrap();
    let r = analyze(&p);
    assert!(r.is_clean(), "uninit reads are warnings, not errors");
    let d = r.diags.iter().find(|d| d.kind == LintKind::UninitRead).expect("uninit-read");
    assert_eq!(d.pc, 1);
    let rendered = d.render(Some(&p));
    assert!(rendered.contains("warning[uninit-read]"), "{rendered}");
    assert!(rendered.contains("line 3"), "span must point at the workload line: {rendered}");
    assert!(rendered.contains("r7"), "{rendered}");
}

#[test]
fn spanless_program_diagnostics_fall_back_to_pc_only_labels() {
    // Programs built through the `Asm` DSL carry no source text, so
    // diagnostics must render a clean pc-only location (and `--json` must
    // emit a null line), not a bogus line number.
    use sim_isa::{Asm, Reg};
    let mut asm = Asm::new();
    asm.li(Reg::R1, 64);
    asm.add(Reg::R2, Reg::R7, Reg::R1); // r7 never written -> uninit-read
    asm.halt();
    let p = asm.finish().unwrap();
    assert!(p.source_line(1).is_none(), "DSL-built programs have no spans");
    let r = analyze(&p);
    let d = r.diags.iter().find(|d| d.kind == LintKind::UninitRead).expect("uninit-read");
    let rendered = d.render(Some(&p));
    assert!(rendered.contains("pc 1"), "{rendered}");
    assert!(!rendered.contains("line"), "span-less render must not invent a line: {rendered}");
    // Rendering with no program at all behaves identically.
    assert_eq!(rendered, d.render(None));
    let json = r.to_json("dsl", Some(&p));
    assert!(json.contains("\"line\":null"), "{json}");
}

#[test]
fn dead_loop_is_an_infinite_loop_error() {
    let p = parse_program(
        "li r1, 1\n\
         spin:\n\
         addi r1, r1, 1\n\
         jmp spin\n\
         halt",
    )
    .unwrap();
    let r = analyze(&p);
    assert!(!r.is_clean());
    let d = r.diags.iter().find(|d| d.kind == LintKind::InfiniteLoop).expect("infinite-loop");
    assert!(d.message.contains("no exit path"), "{}", d.message);
    assert!(d.message.contains("no memory progress"), "{}", d.message);
    // The trailing halt is unreachable — also reported, as a warning.
    assert!(r.diags.iter().any(|d| d.kind == LintKind::UnreachableBlock));
}

#[test]
fn out_of_range_branch_target_is_an_error() {
    // The parser already rejects out-of-range targets with a typed error...
    let err = parse_program("jmp 99\nhalt").unwrap_err();
    assert!(err.to_string().contains("99"), "{err}");
    // ...and the analyzer catches programs assembled in memory.
    let r = analyze_instrs(&[Instr::Jump { target: 99 }, Instr::Halt]);
    assert_eq!(r.errors(), 1);
    assert_eq!(r.diags[0].kind, LintKind::BadBranchTarget);
}

#[test]
fn discovery_classification_matches_golden_file() {
    let golden_path =
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/discovery_classes.txt");
    let mut lines = Vec::new();
    for b in Benchmark::ALL {
        let wl = b.build(None, SIZE, SEED);
        let r = analyze(&wl.prog);
        for l in &r.loops {
            lines.push(format!("{}: {}", wl.name, l.describe(Some(&wl.prog))));
        }
    }
    let got = lines.join("\n") + "\n";
    if std::env::var_os("BLESS").is_some() {
        std::fs::write(golden_path, &got).expect("write golden");
        return;
    }
    let want =
        std::fs::read_to_string(golden_path).expect("golden file exists (BLESS=1 to regenerate)");
    assert_eq!(
        got, want,
        "Discovery-Mode loop classification drifted; run with BLESS=1 to re-bless after review"
    );
}

#[test]
fn golden_file_promises_vectorizable_chains() {
    // The paper's core claim: the irregular suite is dominated by
    // dependent-load chains DVR can vectorize. The static classifier must
    // agree for the flagship kernels.
    for b in [Benchmark::Camel, Benchmark::NasIs, Benchmark::RandomAccess] {
        let wl = b.build(None, SIZE, SEED);
        let r = analyze(&wl.prog);
        assert!(
            r.loops.iter().any(|l| l.class == LoopClass::VectorizableChain),
            "{}: expected a vectorizable-chain loop, got {:?}",
            wl.name,
            r.loops.iter().map(|l| l.class).collect::<Vec<_>>()
        );
    }
}

#[test]
fn sanitized_simulation_is_clean_and_report_identical() {
    let wl = Benchmark::NasIs.build(None, SizeClass::Small, SEED);
    for t in [Technique::Baseline, Technique::Dvr] {
        let cfg = SimConfig::new(t).with_max_instructions(50_000);
        let plain = simulate(&wl, &cfg);
        let sane = simulate(&wl, &cfg.with_sanitize(true));
        let san = sane.sanitizer.as_ref().expect("ledger attached when sanitizing");
        assert!(san.is_clean(), "{}: {}", t.name(), san.summary());
        assert!(san.checks > 1_000, "{}: suspiciously few checks: {}", t.name(), san.checks);
        let strip = |mut r: dvr_sim::SimReport| {
            r.host_seconds = 0.0; // wall clock is the only nondeterministic field
            r.to_json()
        };
        assert_eq!(strip(plain), strip(sane), "{}: sanitizer must not perturb results", t.name());
    }
}
