//! Multi-programmed mix integration tests: the scheduler-driven multi-core
//! path against the single-core golden path, determinism across re-runs,
//! and contention sanity under a shared L3/DRAM.

use dvr_sim::{evaluate_mix, simulate, simulate_mix, MixSpec, SimConfig, Technique};
use workloads::SizeClass;

/// A 1-core mix is the single-core simulation on the scheduler: every
/// deterministic field of its per-core report must match `simulate` on a
/// private hierarchy byte-for-byte (a 1-core "shared" L3 is private).
#[test]
fn one_core_mix_matches_the_single_core_golden_path() {
    for technique in [Technique::Baseline, Technique::Dvr] {
        let spec = MixSpec::round_robin(1, technique);
        let base = SimConfig::new(technique).with_max_instructions(20_000);
        let mix = simulate_mix(&spec, SizeClass::Test, 3, &base);
        let wl = spec.cores[0].bench.build(spec.cores[0].input, SizeClass::Test, 3);
        let mut solo = simulate(&wl, &base);
        solo.host_seconds = 0.0;
        assert_eq!(
            mix.cores[0].to_json(),
            solo.to_json(),
            "1-core mix must be byte-identical to simulate() ({technique:?})"
        );
        assert_eq!(mix.cycles, solo.core.cycles);
    }
}

#[test]
fn mix_reports_are_byte_identical_across_reruns() {
    let spec = MixSpec::parse("bfs/UR:dvr,NAS-IS:ooo", Technique::Baseline).unwrap();
    let base = SimConfig::new(Technique::Baseline).with_max_instructions(15_000);
    let a = simulate_mix(&spec, SizeClass::Test, 11, &base);
    let b = simulate_mix(&spec, SizeClass::Test, 11, &base);
    assert_eq!(a.to_json(), b.to_json());
}

/// Under a capacity-constrained shared L3, co-runners with different access
/// patterns evict each other's lines and queue behind each other's DRAM
/// requests, so each core runs slower than solo — and the contention
/// counters must account for every core's traffic coherently.
///
/// (With a Table 1-sized L3 and cache-resident test inputs, a core can even
/// come out marginally *faster*: mixes share one physical line space, so a
/// co-runner's fills can hit — the `cross_core_hits` counter. The tiny L3
/// here makes destructive interference dominate deterministically.)
#[test]
fn two_core_contention_slows_cores_and_is_accounted() {
    let spec = MixSpec::parse("pr:ooo,RandomAccess:ooo", Technique::Baseline).unwrap();
    let mut base = SimConfig::new(Technique::Baseline).with_max_instructions(15_000);
    base.hierarchy.l3.size_bytes = 16 * 1024;
    let mix = simulate_mix(&spec, SizeClass::Test, 5, &base);
    let solo: Vec<_> = spec
        .cores
        .iter()
        .map(|c| {
            let wl = c.bench.build(c.input, SizeClass::Test, 5);
            simulate(&wl, &base)
        })
        .collect();
    for (m, s) in mix.cores.iter().zip(&solo) {
        assert!(m.outcome.is_complete(), "{:?}", m.outcome);
        assert!(
            m.core.cycles >= s.core.cycles,
            "contention cannot speed a core up: mix {} vs solo {} ({})",
            m.core.cycles,
            s.core.cycles,
            m.workload
        );
    }
    let eval = evaluate_mix(&mix, &solo);
    assert_eq!(eval.slowdowns.len(), 2);
    assert!(eval.slowdowns.iter().all(|&s| s >= 1.0 - 1e-9), "{:?}", eval.slowdowns);
    assert!(eval.throughput > 0.0 && eval.throughput <= 2.0 + 1e-9, "{}", eval.throughput);
    assert!(eval.fairness >= 1.0 - 1e-9, "{}", eval.fairness);
    // Shared-side accounting: each core issued DRAM reads, and the shared
    // per-core counters agree with the private MemStats totals.
    for (m, sh) in mix.cores.iter().zip(&mix.shared) {
        assert_eq!(sh.dram_reads, m.mem.dram_reads(), "{}", m.workload);
        assert!(sh.l3_fills > 0, "{}", m.workload);
    }
}

/// The provenance invariant extends to the shared L3: a sanitized 2-core
/// mix (with cross-core prefetch traffic from DVR) must come back clean,
/// on every core and on the shared-LLC sweeper.
#[test]
fn sanitized_two_core_mix_is_clean() {
    let spec = MixSpec::parse("bfs/UR:dvr,Camel:dvr", Technique::Dvr).unwrap();
    let base = SimConfig::new(Technique::Dvr).with_max_instructions(15_000).with_sanitize(true);
    let mix = simulate_mix(&spec, SizeClass::Test, 9, &base);
    for r in &mix.cores {
        let san = r.sanitizer.as_ref().expect("per-core ledger attached");
        assert!(san.is_clean(), "{}: {}", r.workload, san.summary());
        assert!(san.checks > 0);
    }
    let shared = mix.shared_sanitizer.as_ref().expect("shared ledger attached");
    assert!(shared.is_clean(), "{}", shared.summary());
    assert!(shared.checks > 0, "sweeper must have run");
    // Sanitizing is timing-neutral in the mix too.
    let plain = simulate_mix(&spec, SizeClass::Test, 9, &base.with_sanitize(false));
    assert_eq!(plain.to_json(), mix.to_json());
}

#[test]
fn mix_scales_to_four_cores_deterministically() {
    let spec = MixSpec::round_robin(4, Technique::Dvr);
    let base = SimConfig::new(Technique::Dvr).with_max_instructions(10_000);
    let a = simulate_mix(&spec, SizeClass::Test, 1, &base);
    assert_eq!(a.cores.len(), 4);
    assert!(a.cores.iter().all(|r| r.outcome.is_complete()));
    assert!(a.aggregate_ipc > 0.0);
    let b = simulate_mix(&spec, SizeClass::Test, 1, &base);
    assert_eq!(a.to_json(), b.to_json());
}
