//! Every benchmark × a representative technique set must run to the
//! instruction budget without deadlock, and expose the access patterns its
//! description promises.

use dvr_sim::{simulate, SimConfig, Technique};
use workloads::{Benchmark, GraphInput, SizeClass};

#[test]
fn full_matrix_runs() {
    for b in Benchmark::ALL {
        let g = b.is_gap().then_some(GraphInput::Ur);
        let wl = b.build(g, SizeClass::Test, 31);
        for t in [Technique::Baseline, Technique::Vr, Technique::Dvr] {
            let r = simulate(&wl, &SimConfig::new(t).with_max_instructions(15_000));
            assert!(
                r.core.committed >= 10_000 || r.core.cycles > 0,
                "{} under {} committed only {}",
                wl.name,
                t.name(),
                r.core.committed
            );
        }
    }
}

#[test]
fn memory_intensity_is_in_the_papers_regime() {
    // Indirect-access benchmarks at paper scale must be memory-intense, but
    // not absurdly so: > 2 and < 120 LLC misses per kilo-instruction on the
    // baseline (Table 2's aggregates are 18-61 for graphs).
    for (b, g) in [
        (Benchmark::Camel, None),
        (Benchmark::Hj8, None),
        (Benchmark::RandomAccess, None),
        (Benchmark::Bfs, Some(GraphInput::Kr)),
    ] {
        let wl = b.build(g, SizeClass::Paper, 42);
        let r = simulate(&wl, &SimConfig::new(Technique::Baseline).with_max_instructions(100_000));
        let mpki = r.llc_mpki();
        assert!(
            (2.0..120.0).contains(&mpki),
            "{}: LLC MPKI {mpki:.1} outside the plausible range",
            wl.name
        );
    }
}

#[test]
fn dvr_triggers_on_every_indirect_benchmark() {
    // Every benchmark in the suite has a striding load feeding an indirect
    // chain; DVR must find it.
    for b in Benchmark::ALL {
        let g = b.is_gap().then_some(GraphInput::Kr);
        let wl = b.build(g, SizeClass::Small, 42);
        let r = simulate(&wl, &SimConfig::new(Technique::Dvr).with_max_instructions(60_000));
        assert!(r.engine.episodes > 0, "DVR never triggered on {} ({:?})", wl.name, r.engine);
        assert!(r.engine.runahead_loads > 0, "no runahead loads on {}", wl.name);
    }
}

#[test]
fn divergent_benchmarks_diverge_under_dvr() {
    // Kangaroo and bfs have data-dependent branches inside the chain; the
    // walker must report divergence there, and must not on Camel.
    let diverging = Benchmark::Kangaroo.build(None, SizeClass::Small, 42);
    let straight = Benchmark::Camel.build(None, SizeClass::Small, 42);
    let rd = simulate(&diverging, &SimConfig::new(Technique::Dvr).with_max_instructions(60_000));
    let rs = simulate(&straight, &SimConfig::new(Technique::Dvr).with_max_instructions(60_000));
    assert!(rd.engine.detail.contains("diverged"), "stats detail should mention divergence");
    // Camel's chain is branch-free: no diverged episodes.
    assert!(
        rs.engine.detail.starts_with("dvr: ") && rs.engine.detail.contains(" 0 diverged"),
        "Camel must not diverge: {}",
        rs.engine.detail
    );
}

#[test]
fn graph_inputs_change_behaviour() {
    // KR (power-law) and UR (uniform) must behave measurably differently
    // under DVR on the same kernel: UR's short inner loops force NDM.
    let kr = Benchmark::Pr.build(Some(GraphInput::Kr), SizeClass::Small, 42);
    let ur = Benchmark::Pr.build(Some(GraphInput::Ur), SizeClass::Small, 42);
    let rkr = simulate(&kr, &SimConfig::new(Technique::Dvr).with_max_instructions(80_000));
    let rur = simulate(&ur, &SimConfig::new(Technique::Dvr).with_max_instructions(80_000));
    assert!(
        rur.engine.nested_episodes > rkr.engine.nested_episodes,
        "UR ({} NDM) must use nested runahead more than KR ({} NDM)",
        rur.engine.nested_episodes,
        rkr.engine.nested_episodes
    );
}
