//! Checkpoint-parallel sampling acceptance tests: the sequential driver,
//! the in-process thread fan-out, and the multi-process worker fan-out
//! must produce byte-identical reports on every benchmark; a dead worker
//! must surface a typed error instead of hanging the orchestrator.

use std::path::PathBuf;
use std::sync::OnceLock;

use dvr_sim::{
    measure_periods_via_workers, sample_emit, sampled_report_from, simulate_sampled,
    simulate_sampled_threads, Placement, SampleConfig, SampleError, SimConfig, SimReport,
    Technique,
};
use proptest::prelude::*;
use sim_sample::merge_periods;
use workloads::{Benchmark, GraphInput, SizeClass, Workload};

/// Region of interest: 3 periods of the default sampling configuration.
const INSTRS: u64 = 60_000;

fn suite() -> &'static Vec<Workload> {
    static SUITE: OnceLock<Vec<Workload>> = OnceLock::new();
    SUITE.get_or_init(|| {
        Benchmark::ALL
            .into_iter()
            .map(|b| b.build(b.is_gap().then_some(GraphInput::Kr), SizeClass::Small, 42))
            .collect()
    })
}

/// Reports with the wall-clock fields zeroed: everything that remains
/// must be bit-identical across dispatch strategies.
fn normalized_json(mut r: SimReport) -> String {
    r.host_seconds = 0.0;
    r.to_json()
}

fn technique_flag(t: Technique) -> &'static str {
    match t {
        Technique::Baseline => "ooo",
        Technique::Dvr => "dvr",
        _ => unimplemented!("only the techniques this test exercises"),
    }
}

/// The worker command line the orchestrator would build for this cell,
/// pointed at the freshly built `dvrsim` binary under test.
fn worker_argv(b: Benchmark, t: Technique, scfg: &SampleConfig) -> Vec<String> {
    let mut v: Vec<String> = vec![
        env!("CARGO_BIN_EXE_dvrsim").into(),
        "sample-worker".into(),
        "--bench".into(),
        b.name().into(),
        "--technique".into(),
        technique_flag(t).into(),
        "--size".into(),
        "small".into(),
        "--seed".into(),
        "42".into(),
        "--instrs".into(),
        INSTRS.to_string(),
        "--interval".into(),
        scfg.interval.to_string(),
        "--warmup".into(),
        scfg.warmup.to_string(),
        "--period".into(),
        scfg.period.to_string(),
        "--placement".into(),
        match scfg.placement {
            Placement::Systematic => "systematic".into(),
            Placement::Random => "random".into(),
        },
        "--sample-seed".into(),
        scfg.seed.to_string(),
        "--json".into(),
    ];
    if b.is_gap() {
        v.push("--input".into());
        v.push("kr".into());
    }
    v
}

fn scratch(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("dvrsim-test-{}-{tag}", std::process::id()))
}

/// Runs the full multi-process path: emit checkpoints in-process, measure
/// every period in spawned `dvrsim sample-worker` processes, merge.
fn sampled_via_workers(
    wl: &Workload,
    b: Benchmark,
    cfg: &SimConfig,
    scfg: &SampleConfig,
    jobs: usize,
    tag: &str,
) -> SimReport {
    let dir = scratch(tag);
    let argv = worker_argv(b, cfg.technique, scfg);
    let result = sample_emit(wl, cfg, scfg).and_then(|emit| {
        let periods = measure_periods_via_workers(&argv, &emit.checkpoints, jobs, &dir)?;
        Ok(merge_periods(periods, emit.total_retired, emit.halted))
    });
    let _ = std::fs::remove_dir_all(&dir);
    sampled_report_from(wl, cfg, scfg, result)
}

/// Acceptance criterion: on all 13 benchmarks, the sequential driver, the
/// 4-thread in-process fan-out, and the multi-process worker fan-out
/// produce byte-identical reports once wall-clock fields are stripped.
#[test]
fn all_three_dispatch_paths_are_byte_identical_on_every_benchmark() {
    let scfg = SampleConfig::default();
    for (i, b) in Benchmark::ALL.into_iter().enumerate() {
        let wl = &suite()[i];
        let cfg = SimConfig::new(Technique::Baseline).with_max_instructions(INSTRS);
        let seq = normalized_json(simulate_sampled(wl, &cfg, &scfg));
        let threaded = normalized_json(simulate_sampled_threads(wl, &cfg, &scfg, 4));
        let procs =
            normalized_json(sampled_via_workers(wl, b, &cfg, &scfg, 2, &format!("all13-{i}")));
        assert_eq!(seq, threaded, "{}: threads diverged from sequential", wl.name);
        assert_eq!(seq, procs, "{}: worker processes diverged from sequential", wl.name);
    }
}

/// A worker command line that cannot even parse its arguments (no
/// `--bench`) must come back as a typed [`SampleError::Worker`] — the
/// orchestrator reaps the dead children instead of hanging on them.
#[test]
fn broken_worker_command_surfaces_a_typed_error() {
    let wl = &suite()[0];
    let cfg = SimConfig::new(Technique::Baseline).with_max_instructions(INSTRS);
    let scfg = SampleConfig::default();
    let emit = sample_emit(wl, &cfg, &scfg).expect("emit succeeds");
    assert!(!emit.checkpoints.is_empty());
    let argv: Vec<String> =
        vec![env!("CARGO_BIN_EXE_dvrsim").into(), "sample-worker".into(), "--json".into()];
    let dir = scratch("broken");
    let res = measure_periods_via_workers(&argv, &emit.checkpoints, 2, &dir);
    let _ = std::fs::remove_dir_all(&dir);
    match res {
        Err(SampleError::Worker(msg)) => {
            assert!(!msg.is_empty(), "worker error carries a message")
        }
        other => panic!("expected SampleError::Worker, got {other:?}"),
    }
}

proptest! {
    // Every case runs three full sampled simulations (one of them across
    // worker processes); keep the count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Byte-identity is a property of *any* sampling configuration, not
    /// just the default: random benchmark, placement policy, placement
    /// seed, thread count, and job count all agree with the sequential
    /// driver.
    #[test]
    fn dispatch_paths_agree_on_random_configs(
        which in 0usize..13,
        random_placement in any::<bool>(),
        sample_seed in 1u64..1000,
        threads in 1usize..5,
        jobs in 1usize..4,
    ) {
        let b = Benchmark::ALL[which];
        let wl = &suite()[which];
        let technique = if which % 2 == 0 { Technique::Baseline } else { Technique::Dvr };
        let cfg = SimConfig::new(technique).with_max_instructions(INSTRS);
        let placement =
            if random_placement { Placement::Random } else { Placement::Systematic };
        let scfg = SampleConfig::default().with_placement(placement).with_seed(sample_seed);

        let seq = normalized_json(simulate_sampled(wl, &cfg, &scfg));
        let threaded = normalized_json(simulate_sampled_threads(wl, &cfg, &scfg, threads));
        let tag = format!("prop-{which}-{sample_seed}-{threads}-{jobs}");
        let procs = normalized_json(sampled_via_workers(wl, b, &cfg, &scfg, jobs, &tag));
        prop_assert_eq!(&seq, &threaded, "{}: threads diverged", wl.name);
        prop_assert_eq!(&seq, &procs, "{}: worker processes diverged", wl.name);
    }
}
