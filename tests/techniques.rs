//! Behavioural contracts of the runahead techniques — the paper's key
//! qualitative claims, asserted as tests.

use dvr_sim::{simulate, SimConfig, Technique};
use workloads::{Benchmark, GraphInput, SizeClass};

fn run(b: Benchmark, g: Option<GraphInput>, t: Technique, instrs: u64) -> dvr_sim::SimReport {
    let wl = b.build(g, SizeClass::Small, 42);
    simulate(&wl, &SimConfig::new(t).with_max_instructions(instrs))
}

/// Section 1: DVR outperforms both the baseline and VR on deep indirect
/// chains.
#[test]
fn dvr_beats_baseline_and_vr_on_deep_chains() {
    let base = run(Benchmark::Hj8, None, Technique::Baseline, 150_000);
    let vr = run(Benchmark::Hj8, None, Technique::Vr, 150_000);
    let dvr = run(Benchmark::Hj8, None, Technique::Dvr, 150_000);
    assert!(
        dvr.ipc > 1.5 * base.ipc,
        "DVR {:.3} must clearly beat OoO {:.3} on HJ8",
        dvr.ipc,
        base.ipc
    );
    assert!(dvr.ipc > vr.ipc, "DVR {:.3} must beat VR {:.3}", dvr.ipc, vr.ipc);
}

/// Figure 9: DVR sustains more outstanding misses than the baseline.
#[test]
fn dvr_raises_mlp() {
    let base = run(Benchmark::Hj8, None, Technique::Baseline, 100_000);
    let dvr = run(Benchmark::Hj8, None, Technique::Dvr, 100_000);
    assert!(
        dvr.mlp > 2.0 * base.mlp,
        "DVR MLP {:.1} must dwarf baseline {:.1} on a serial chain",
        dvr.mlp,
        base.mlp
    );
}

/// Figure 10: DVR's Discovery Mode keeps total DRAM traffic near demand;
/// VR (no loop bounds) over-fetches more.
#[test]
fn dvr_is_more_accurate_than_vr() {
    let vr = run(Benchmark::Bfs, Some(GraphInput::Ur), Technique::Vr, 100_000);
    let dvr = run(Benchmark::Bfs, Some(GraphInput::Ur), Technique::Dvr, 100_000);
    let vr_acc = vr.mem.accuracy(dvr_sim::PrefetchSource::Vr);
    let dvr_acc = dvr.mem.accuracy(dvr_sim::PrefetchSource::Dvr);
    if let (Some(v), Some(d)) = (vr_acc, dvr_acc) {
        assert!(d >= v - 0.05, "DVR accuracy {d:.2} must not trail VR {v:.2} on short-loop UR");
    }
}

/// Section 2.2: PRE cannot prefetch past the first level of indirection —
/// its runahead loads at deeper levels are poisoned.
#[test]
fn pre_is_poisoned_beyond_first_indirection() {
    let wl = Benchmark::Camel.build(None, SizeClass::Small, 42);
    let mut mem = wl.mem.clone();
    let mut hier = dvr_sim::MemoryHierarchy::new(dvr_sim::HierarchyConfig::default());
    let mut core = dvr_sim::OooCore::new(dvr_sim::CoreConfig::default());
    let mut pre = dvr_sim::PreEngine::default();
    core.run(&wl.prog, &mut mem, &mut hier, &mut pre, 100_000).expect("run failed");
    let s = pre.stats();
    assert!(s.episodes > 0, "PRE must trigger on Camel");
    assert!(s.poisoned_loads > 0, "Camel's second-level loads must be INV-poisoned in PRE");
}

/// Section 3 observation 2: VR's delayed termination blocks commit; DVR
/// never blocks commit.
#[test]
fn only_vr_blocks_commit() {
    let vr = run(Benchmark::Camel, None, Technique::Vr, 100_000);
    let dvr = run(Benchmark::Camel, None, Technique::Dvr, 100_000);
    assert!(vr.core.commit_blocked_engine_cycles > 0, "VR must show delayed termination");
    assert_eq!(dvr.core.commit_blocked_engine_cycles, 0, "DVR is decoupled from commit");
}

/// IMP learns affine indirection (NAS-IS) but not hashed chains (Camel).
#[test]
fn imp_selectivity_matches_paper() {
    let is_base = run(Benchmark::NasIs, None, Technique::Baseline, 100_000);
    let is_imp = run(Benchmark::NasIs, None, Technique::Imp, 100_000);
    assert!(
        is_imp.ipc > 1.05 * is_base.ipc,
        "IMP must speed up NAS-IS ({:.3} vs {:.3})",
        is_imp.ipc,
        is_base.ipc
    );
    let cm_base = run(Benchmark::Camel, None, Technique::Baseline, 100_000);
    let cm_imp = run(Benchmark::Camel, None, Technique::Imp, 100_000);
    assert!(
        cm_imp.ipc < 1.1 * cm_base.ipc,
        "IMP must not learn Camel's hashed chain ({:.3} vs {:.3})",
        cm_imp.ipc,
        cm_base.ipc
    );
}

/// Figure 8's ordering: full DVR is at least as good as its ablations on
/// short-inner-loop inputs where NDM matters.
#[test]
fn fig8_breakdown_ordering_on_short_loops() {
    let b = Benchmark::Pr;
    let g = Some(GraphInput::Ur);
    let base = run(b, g, Technique::Baseline, 100_000);
    let offload = run(b, g, Technique::DvrOffload, 100_000).speedup_over(&base);
    let full = run(b, g, Technique::Dvr, 100_000).speedup_over(&base);
    assert!(
        full >= 0.9 * offload,
        "full DVR ({full:.2}) must not collapse versus offload-only ({offload:.2})"
    );
    assert!(full > 1.0, "full DVR must beat the baseline on pr_UR");
}

/// The Oracle is an upper bound for the baseline.
#[test]
fn oracle_dominates_baseline() {
    for (b, g) in [(Benchmark::Camel, None), (Benchmark::Bfs, Some(GraphInput::Kr))] {
        let base = run(b, g, Technique::Baseline, 80_000);
        let oracle = run(b, g, Technique::Oracle, 80_000);
        assert!(
            oracle.ipc >= base.ipc,
            "Oracle ({:.3}) must dominate OoO ({:.3}) on {}",
            oracle.ipc,
            base.ipc,
            b.name()
        );
    }
}

/// DVR must use Nested Vector Runahead on short-inner-loop graph inputs.
#[test]
fn ndm_engages_on_uniform_graphs() {
    let wl = Benchmark::Pr.build(Some(GraphInput::Ur), SizeClass::Small, 42);
    let r = simulate(&wl, &SimConfig::new(Technique::Dvr).with_max_instructions(100_000));
    assert!(
        r.engine.nested_episodes > 0,
        "UR's short inner loops must trigger NDM: {:?}",
        r.engine
    );
}
